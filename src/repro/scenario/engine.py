"""The simulation engine: two days of Root DNS under attack.

For every ten-minute bin the engine:

1. computes each letter's per-site offered load -- attack volume routed
   by the botnet's catchments plus legitimate traffic (baseline +
   letter-flip retries from the previous bin);
2. evaluates facility spillover (collateral damage) across co-located
   services;
3. evaluates each site's overload (loss fraction, queueing delay);
4. samples every vantage point's observation of every letter;
5. accumulates RSSAC-002 counters and the .nl series;
6. runs each letter's policy loop (withdraw / partial withdraw /
   recover / standby), whose routing effects apply from the next bin.

Afterwards it derives the BGPmon route-change series from each
prefix's change log and packages everything into a
:class:`ScenarioResult`.

The expensive pre-loop artifacts -- the AS topology (with the site
host ASes wired in), the letter deployments, the Atlas VP population,
the botnet placement, and the BGPmon collector peers -- are bundled
into a :class:`Substrate`.  :func:`simulate` builds one on the fly,
but callers running *many* scenarios that share those artifacts (the
sweep engine, :mod:`repro.sweep`) build it once via
:func:`build_substrate` and pass it back in: the substrate is
:meth:`~Substrate.reset` to its post-construction state before every
run, which is proven bit-identical to a fresh build by
``tests/scenario/test_substrate.py`` and the sweep golden tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..atlas.probing import LetterProber, SiteBinConditions
from ..devtools import sanitize
from ..atlas.vps import build_vps
from ..attack.botnet import Botnet, build_botnet
from ..attack.events import active_event, attack_rate
from ..attack.workload import (
    BaselineWorkload,
    legit_share_vector,
    retry_spill,
)
from ..bgpmon.collector import BgpCollectors, build_collectors
from ..datasets.observations import AtlasDataset, VantagePointTable
from ..dns.message import make_query
from ..faults.quality import DataQuality
from ..faults.runtime import FaultRuntime
from ..netsim.topology import Topology, build_topology
from ..rootdns.deployment import LetterDeployment, build_deployments
from ..rootdns.facility import FacilityRegistry
from ..rootdns.letters import LETTERS_SPEC, LetterSpec
from ..rssac.reports import (
    DayAccumulator,
    DailyReport,
    build_baseline_report,
    build_daily_report,
)
from ..util import env
from ..util.env import env_flag
from ..util.rng import RngFactory
from ..util.timegrid import Interval, TimeGrid
from .config import ScenarioConfig
from .nl import NlService, register_nl_nodes

if TYPE_CHECKING:
    from ..defense.controllers import Controller
    from ..netsim.bgp import RoutingTable

#: Utilisation above which a site counts as overloaded for server-
#: behaviour purposes (shedding, skew).
OVERLOAD_RHO = 1.05

#: Shared facility ingress relative to tenant capacity (section 3.6);
#: facilities are sized for normal loads, not 100x events.
FACILITY_INGRESS_FACTOR = 0.1

#: Dates of the canonical simulated window and its baseline week.
EVENT_DATES = ("2015-11-30", "2015-12-01")
BASELINE_DATES = (
    "2015-11-23", "2015-11-24", "2015-11-25", "2015-11-26",
    "2015-11-27", "2015-11-28", "2015-11-29",
)


def window_dates(grid: TimeGrid) -> tuple[list[str], list[str]]:
    """(day dates, 7-day baseline dates) for an arbitrary 48 h window."""
    import datetime as _dt

    start = _dt.datetime.fromtimestamp(grid.start, tz=_dt.timezone.utc)
    days = [
        (start + _dt.timedelta(days=i)).strftime("%Y-%m-%d")
        for i in range(max(1, grid.seconds // 86_400))
    ]
    baseline = [
        (start - _dt.timedelta(days=i)).strftime("%Y-%m-%d")
        for i in range(7, 0, -1)
    ]
    return days, baseline


@dataclass(slots=True)
class _EpochData:
    """Per-(letter, routing epoch) precomputed arrays.

    Everything here depends only on the routing table, so it is
    computed once per distinct ``table.version`` a letter visits and
    reused by every bin of that epoch; the per-bin work in pass 1
    reduces to scalar-times-vector arithmetic.
    """

    epoch: int                # index into LetterTruth.stub_site_by_epoch
    bot_share: np.ndarray     # attack share per site (site order)
    legit_share: np.ndarray   # legitimate share per site (site order)
    legit_total: float        # routed legitimate share (<= 1)


@dataclass(slots=True)
class LetterTruth:
    """Ground-truth per-bin site series for one letter (site order).

    ``epoch_of_bin``/``stub_site_by_epoch`` record the routing history
    at stub-AS granularity: bin *b*'s catchment for stub *i* is
    ``stub_site_by_epoch[epoch_of_bin[b], i]`` (site index, -1 for no
    route).  The recursive-resolver layer replays queries against this.
    """

    site_codes: list[str]
    offered_qps: np.ndarray   # (n_bins, n_sites)
    loss: np.ndarray          # (n_bins, n_sites)
    delay_ms: np.ndarray      # (n_bins, n_sites)
    announced: np.ndarray     # bool (n_bins, n_sites)
    legit_offered_qps: np.ndarray = None  # (n_bins,)
    legit_served_qps: np.ndarray = None   # (n_bins,)
    epoch_of_bin: np.ndarray = None       # (n_bins,) int
    stub_site_by_epoch: np.ndarray = None # (n_epochs, n_stubs) int16

    def stub_site(self, bin_index: int, stub_index: int) -> int:
        """Site index serving stub *stub_index* in bin *bin_index*."""
        epoch = int(self.epoch_of_bin[bin_index])
        return int(self.stub_site_by_epoch[epoch, stub_index])


@dataclass(slots=True)
class ScenarioResult:
    """Everything the analysis pipeline consumes."""

    config: ScenarioConfig
    grid: TimeGrid
    topology: Topology
    deployments: dict[str, LetterDeployment]
    facilities: FacilityRegistry
    botnet: Botnet
    collectors: BgpCollectors
    atlas: AtlasDataset
    rssac: dict[str, tuple[DailyReport, ...]]
    route_changes: dict[str, np.ndarray]
    truth: dict[str, LetterTruth]
    nl: NlService | None
    duplicate_ratio: float = 0.0
    letters: list[str] = field(default_factory=list)
    #: What degraded in this run (injected faults, missing reports);
    #: empty means full fidelity.
    quality: DataQuality = field(default_factory=DataQuality)

    def vps(self) -> VantagePointTable:
        return self.atlas.vps

    def event_intervals(self) -> tuple[Interval, ...]:
        """The attack intervals of this scenario's events."""
        return tuple(e.interval for e in self.config.events)

    def event_mask(self) -> np.ndarray:
        """Boolean per-bin mask over this scenario's own events."""
        return self.grid.event_mask(self.event_intervals())


def _run_controller(
    controller: Controller,
    dep: LetterDeployment,
    bin_index: int,
    codes: list[str],
    capacity: np.ndarray,
    offered: np.ndarray,
    loss: np.ndarray,
    timestamp: float,
) -> None:
    """Drive one defense controller for one letter-bin."""
    from ..defense.controllers import Action, ActionKind, OracleController
    from ..defense.observation import LetterObservation, SiteObservation

    sites: list[SiteObservation] = []
    for i, code in enumerate(codes):
        accepted = float(offered[i] * (1.0 - loss[i]))
        dropped = float(offered[i] * loss[i])
        state = dep.states[code]
        sites.append(
            SiteObservation(
                code=code,
                capacity_qps=float(capacity[i]),
                accepted_qps=accepted,
                dropped_qps=dropped,
                announced=dep.prefix.is_announced(code),
                partial=state.partial,
            )
        )
    observation = LetterObservation(
        letter=dep.letter, bin_index=bin_index, sites=tuple(sites)
    )
    if isinstance(controller, OracleController):
        controller.set_truth(
            {code: float(offered[i]) for i, code in enumerate(codes)}
        )
    for action in controller.decide(observation):
        if not isinstance(action, Action):
            raise TypeError(f"controller returned {action!r}")
        if action.kind is ActionKind.WITHDRAW:
            dep.prefix.withdraw(action.site, timestamp)
        elif action.kind is ActionKind.ANNOUNCE:
            dep.prefix.announce(action.site, timestamp)
        elif action.kind is ActionKind.PARTIAL:
            dep.prefix.set_blocked(
                action.site,
                dep._blocked_set_for_partial(action.site),
                timestamp,
            )
            dep.states[action.site].partial = True
        elif action.kind is ActionKind.RESTORE:
            dep.prefix.set_blocked(action.site, frozenset(), timestamp)
            dep.states[action.site].partial = False


@dataclass(slots=True)
class _RunState:
    """Everything the bin loop reads and mutates, bundled.

    Shared by the per-bin reference path (:func:`_run_bin`) and the
    segment-batched executor (:mod:`repro.scenario.batch`), so both
    operate on literally the same state objects and interleave freely
    (the batched path falls back to :func:`_run_bin` for bins a fault
    perturbs).
    """

    config: ScenarioConfig
    grid: TimeGrid
    topology: Topology
    facilities: FacilityRegistry
    deployments: dict[str, LetterDeployment]
    letters: list[str]
    botnet: Botnet
    nl: NlService | None
    faults: FaultRuntime | None
    probers: dict[str, LetterProber]
    workloads: dict[str, BaselineWorkload]
    truth: dict[str, LetterTruth]
    epoch_catchments: dict[str, list[np.ndarray]]
    epoch_cache: dict[tuple[str, int], _EpochData]
    accumulators: dict[str, dict[str, DayAccumulator]]
    day_dates: list[str]
    buffer_caps: dict[str, np.ndarray]
    qname_sizes: dict[str, int]
    #: Letter-flip retry feedback: extra legitimate load per letter in
    #: the *next* bin, updated at the end of every bin.
    spill: dict[str, float]


def _epoch_for(
    state: _RunState, letter: str
) -> tuple["RoutingTable", _EpochData]:
    """The letter's current routing table and per-epoch arrays.

    Cache misses append the epoch's stub catchment and assign the next
    epoch index, so epoch numbering follows each letter's first-visit
    order exactly as the original inline code did.
    """
    dep = state.deployments[letter]
    table = dep.routing()
    key = (letter, table.version)
    ed = state.epoch_cache.get(key)
    if ed is None:
        legit_share, legit_total = legit_share_vector(
            table, state.topology.stub_asns, dep.site_index
        )
        ed = _EpochData(
            epoch=len(state.epoch_catchments[letter]),
            bot_share=state.botnet.site_share_vector(
                table, dep.site_index
            ),
            legit_share=legit_share,
            legit_total=legit_total,
        )
        state.epoch_catchments[letter].append(
            table.sites_of(state.topology.stub_asns, dep.site_index)
        )
        state.epoch_cache[key] = ed
    return table, ed


def _run_bin(state: _RunState, b: int) -> None:
    """One bin of the reference per-bin path (passes 1-3)."""
    config = state.config
    grid = state.grid
    letters = state.letters
    deployments = state.deployments
    faults = state.faults
    nl = state.nl
    truth = state.truth
    spill = state.spill

    ts = grid.bin_start(b)
    tc = ts + grid.bin_seconds / 2.0
    date = state.day_dates[
        min(len(state.day_dates) - 1, b * grid.bin_seconds // 86_400)
    ]
    event = active_event(config.events, tc)

    # Incidental failures scheduled for this bin (session resets
    # flap announcements before the routing tables are read).
    if faults is not None:
        faults.apply_routing(b, float(ts))

    # --- Pass 1: offered load per site, across all letters. -------
    offered_by_label: dict[str, float] = {}
    per_letter: dict[str, dict] = {}
    for letter in letters:
        dep = deployments[letter]
        table, ed = _epoch_for(state, letter)
        truth[letter].epoch_of_bin[b] = ed.epoch

        attack_qps = attack_rate(config.events, letter, tc)
        legit_qps = state.workloads[letter].rate_at(tc)
        spill_qps = spill[letter]

        attack_site = attack_qps * ed.bot_share
        legit_site = (legit_qps + spill_qps) * ed.legit_share
        offered = attack_site + legit_site
        labels = dep.site_labels
        for i in np.flatnonzero(offered > 0):
            offered_by_label[labels[i]] = float(offered[i])
        per_letter[letter] = {
            "table": table,
            "ed": ed,
            "attack_site": attack_site,
            "legit_site": legit_site,
            "offered": offered,
            "attack_qps": attack_qps,
            "legit_qps": legit_qps,
            "spill_qps": spill_qps,
        }

    nl_offered: dict[str, float] | None = None
    if nl is not None:
        nl_offered = nl.node_offered(tc)
        offered_by_label.update(nl_offered)

    # --- Pass 2: facility spillover. -------------------------------
    facility_extra = state.facilities.spillover(offered_by_label)

    # --- Pass 3: per-letter outcomes, probing, policies. -----------
    new_spill_sources: dict[str, float] = {}
    for letter in letters:
        dep = deployments[letter]
        data = per_letter[letter]
        codes = dep.site_order
        capacity = dep.capacity_vector
        if faults is not None:
            capacity = faults.capacity(letter, b, capacity)
        offered = data["offered"]
        rho, loss, delay = config.overload.evaluate(offered, capacity)
        delay = np.minimum(delay, state.buffer_caps[letter])

        extra = np.array(
            [
                facility_extra.get(label, 0.0)
                for label in dep.site_labels
            ]
        )
        combined_loss = 1.0 - (1.0 - loss) * (1.0 - extra)
        overloaded = rho > OVERLOAD_RHO

        conditions = SiteBinConditions(
            loss=combined_loss,
            delay_ms=delay,
            overloaded=overloaded,
        )
        state.probers[letter].record_bin(b, data["table"], conditions)

        t = truth[letter]
        t.offered_qps[b] = offered
        t.loss[b] = combined_loss
        t.delay_ms[b] = delay
        t.announced[b] = dep.announced_mask()

        # RSSAC accumulation: what the servers accepted.
        accepted_frac = 1.0 - combined_loss
        attack_accepted = float(
            (data["attack_site"] * accepted_frac).sum()
        )
        legit_accepted = float(
            (data["legit_site"] * accepted_frac).sum()
        )
        legit_offered = data["legit_qps"] + data["spill_qps"]
        t.legit_offered_qps[b] = legit_offered
        t.legit_served_qps[b] = legit_accepted
        if legit_offered > 0:
            spill_fraction = data["spill_qps"] / legit_offered
        else:
            spill_fraction = 0.0
        acc = state.accumulators[letter][date]
        qname_payload = None
        resp_payload = None
        if event is not None and data["attack_qps"] > 0:
            qname_payload = state.qname_sizes.get(event.qname)
            if qname_payload is None:
                qname_payload = make_query(0, event.qname).wire_size
                state.qname_sizes[event.qname] = qname_payload
            resp_payload = event.response_wire_bytes - 40
        acc.add_bin(
            legit_accepted=legit_accepted * (1.0 - spill_fraction),
            spill_accepted=legit_accepted * spill_fraction,
            attack_accepted=attack_accepted,
            bin_seconds=grid.bin_seconds,
            attack_query_payload=qname_payload,
            attack_response_payload=resp_payload,
        )

        # Letter flips: legitimate queries lost here are retried at
        # the other letters next bin.
        lost_legit = float(
            (data["legit_site"] * combined_loss).sum()
        )
        unrouted = 1.0 - data["ed"].legit_total
        lost_legit += max(0.0, unrouted) * legit_offered
        new_spill_sources[letter] = lost_legit

        # Control loop (affects routing from the next bin): either
        # the deployment's built-in static policies or a pluggable
        # defense controller (repro.defense).
        controller = (
            config.controllers.get(letter)
            if config.controllers
            else None
        )
        if controller is None:
            dep.apply_policies(
                rho,
                letter_under_attack=data["attack_qps"] > 0,
                timestamp=float(ts + grid.bin_seconds),
            )
        else:
            _run_controller(
                controller, dep, b, codes, capacity, offered,
                combined_loss, float(ts + grid.bin_seconds),
            )

    if nl is not None:
        nl.record_bin(b, facility_extra, offered=nl_offered)

    state.spill = retry_spill(new_spill_sources, letters)


#: Config fields that determine the substrate (everything built before
#: the bin loop).  Fields absent here -- attack events, the overload
#: model, the observation window, controllers, faults -- only shape
#: the run itself, so scenarios differing in them can share a
#: substrate.
_SUBSTRATE_FIELDS = (
    "seed",
    "n_stubs",
    "n_vps",
    "letters",
    "topology",
    "vps",
    "botnet",
    "bgpmon",
    "custom_letters",
    "include_nl",
    "nl",
)


def _freeze(value: object) -> object:
    """A hashable, equality-faithful token for one config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, dict):
        return tuple(
            (k, _freeze(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value))
    return value


def substrate_signature(config: ScenarioConfig) -> tuple[object, ...]:
    """A hashable key identifying the substrate *config* implies.

    Two configs with equal signatures build bit-identical substrates;
    the sweep engine's per-worker cache is keyed on this.
    """
    return tuple(
        _freeze(getattr(config, name)) for name in _SUBSTRATE_FIELDS
    )


@dataclass(slots=True)
class Substrate:
    """The pre-loop artifacts one or more scenario runs share.

    Holds the AS topology (site host ASes included), the facility
    registry, the letter deployments, the Atlas VP population, the
    botnet placement, and the BGPmon collector peers.  The topology,
    VP, botnet, and collector tables are immutable during a run; the
    deployments (announcement state, policy state, change logs) are
    not, so :meth:`reset` restores them to their post-construction
    state before each reuse.  Pure caches (routing tables per
    announcement state, per-origin distance rows) are deliberately
    kept across resets -- they are functions of immutable inputs, and
    reusing them is what makes replicate runs cheap.
    """

    signature: tuple[object, ...]
    topology: Topology
    facilities: FacilityRegistry
    deployments: dict[str, LetterDeployment]
    specs: dict[str, LetterSpec]
    letters: list[str]
    vps: VantagePointTable
    botnet: Botnet
    collectors: BgpCollectors
    #: Substrate-level routing memo, shared by every letter's prefix
    #: (keyed ``(letter, announcement-state key)``).  Survives prefix
    #: LRU eviction and :meth:`reset`, so sweep cells that differ only
    #: in attack knobs reuse each other's routing tables -- and give
    #: the delta path nearby base states to derive new ones from.
    routing_memo: dict[tuple, "RoutingTable"] = field(
        default_factory=dict
    )

    def reset(self) -> None:
        """Restore every mutable piece to its post-construction state."""
        for letter in self.letters:
            self.deployments[letter].reset()


def substrate_constant_arrays(
    substrate: Substrate,
) -> list[tuple[str, np.ndarray]]:
    """Every constant array of *substrate*, as ordered (name, array)
    pairs with stable path-like names.

    This is the shared-constant half of the substrate's serialization
    split: the arrays listed here are immutable for the lifetime of
    the substrate (they are exactly the arrays
    :func:`repro.devtools.sanitize.freeze_substrate` locks, plus the
    compiled CSR graph view and the AS-graph geometry/distance memos),
    so the zero-copy sweep layer (:mod:`repro.sweep.shm`) exports them
    once into shared memory and every worker maps them read-only.
    Everything *not* listed -- deployment announcement state, change
    logs, routing caches -- is per-cell-mutable state that each worker
    owns privately.

    The compiled graph view is forced into existence here so that a
    substrate exported right after :func:`build_substrate` ships its
    CSR arrays; forcing a pure cache cannot change any output.
    """
    pairs: list[tuple[str, np.ndarray]] = []
    vps = substrate.vps
    for name in (
        "ids", "asns", "lats", "lons", "regions", "firmware", "hijacked",
    ):
        pairs.append((f"vps/{name}", getattr(vps, name)))
    pairs.append(("botnet/asns", substrate.botnet.asns))
    pairs.append(("botnet/weights", substrate.botnet.weights))
    pairs.append(("collectors/peer_asns", substrate.collectors.peer_asns))
    for letter in substrate.letters:
        deployment = substrate.deployments[letter]
        pairs.append(
            (f"deployments/{letter}/capacity", deployment.capacity_vector)
        )
        pairs.append(
            (
                f"deployments/{letter}/fastpath_thresholds",
                deployment._fastpath_thresholds,
            )
        )
    graph = substrate.topology.graph
    compiled = graph.compiled()
    for name in compiled.array_fields():
        pairs.append((f"graph/csr/{name}", getattr(compiled, name)))
    _, lats, lons = graph.coordinate_arrays()
    pairs.append(("graph/coords/lats", lats))
    pairs.append(("graph/coords/lons", lons))
    memo = graph.distance_memo()
    for key in sorted(memo):
        pairs.append((f"graph/distance/{key}", memo[key]))
    return pairs


def build_substrate(config: ScenarioConfig) -> Substrate:
    """Build the shared pre-loop artifacts for *config*.

    Draws exactly the streams a plain :func:`simulate` call would
    (``topology``, ``atlas.vps``, ``attack.botnet``, ``bgpmon.peers``),
    so a substrate-reusing run is bit-identical to a standalone one.
    """
    rngs = RngFactory(config.seed)
    topology = build_topology(
        config.topology_config(), rngs.get("topology")
    )
    facilities = FacilityRegistry(
        ingress_factor=FACILITY_INGRESS_FACTOR
    )
    specs = (
        config.custom_letters
        if config.custom_letters is not None
        else LETTERS_SPEC
    )
    if config.letters is not None:
        specs = {letter: specs[letter] for letter in config.letters}
    deployments = build_deployments(topology, facilities, specs)
    letters = sorted(deployments)

    vps = build_vps(topology, config.vp_config(), rngs.get("atlas.vps"))
    botnet = build_botnet(topology, config.botnet, rngs.get("attack.botnet"))
    collectors = build_collectors(
        topology, config.bgpmon, rngs.get("bgpmon.peers")
    )
    if config.include_nl:
        # Registration order matters for the facility spillover walk:
        # .nl nodes join their facilities after every root site, same
        # as the pre-substrate engine did.
        register_nl_nodes(facilities, config.nl)
    substrate = Substrate(
        signature=substrate_signature(config),
        topology=topology,
        facilities=facilities,
        deployments=deployments,
        specs=specs,
        letters=letters,
        vps=vps,
        botnet=botnet,
        collectors=collectors,
    )
    for letter in letters:
        deployments[letter].prefix.attach_shared_memo(
            substrate.routing_memo, letter
        )
    # Under REPRO_SANITIZE=1 the constant arrays every run shares are
    # locked read-only, so an in-place mutation raises at the write
    # site instead of corrupting a sibling sweep cell.
    if sanitize.enabled():
        sanitize.freeze_substrate(substrate)
    return substrate


def simulate(
    config: ScenarioConfig, substrate: Substrate | None = None
) -> ScenarioResult:
    """Run the full scenario and return the dataset bundle.

    With a *substrate* (see :func:`build_substrate`), the expensive
    pre-loop artifacts are reused instead of rebuilt; the substrate is
    reset first, and the outputs are bit-identical to a fresh build.
    The substrate must have been built for a config with the same
    :func:`substrate_signature`.
    """
    if substrate is None:
        substrate = build_substrate(config)
    elif substrate.signature != substrate_signature(config):
        raise ValueError(
            "substrate was built for a different scenario "
            "configuration (substrate signatures differ)"
        )
    else:
        substrate.reset()
    rngs = RngFactory(config.seed)
    grid = config.grid()

    topology = substrate.topology
    facilities = substrate.facilities
    specs = substrate.specs
    deployments = substrate.deployments
    letters = substrate.letters
    vps = substrate.vps
    botnet = substrate.botnet
    collectors = substrate.collectors
    nl = (
        NlService(config.nl, grid)
        if config.include_nl
        else None
    )
    # An empty plan builds no runtime and draws no RNG stream, keeping
    # fault-free runs bit-identical to the pre-fault engine.
    faults = (
        FaultRuntime(
            config.faults, grid, deployments, collectors,
            len(vps), rngs.get("faults"),
        )
        if config.faults
        else None
    )

    probers = {
        letter: LetterProber(
            deployments[letter], vps, grid, rngs.get(f"atlas.{letter}")
        )
        for letter in letters
    }
    workloads = {
        letter: BaselineWorkload(base_qps=specs[letter].baseline_qps)
        for letter in letters
    }
    truth = {
        letter: LetterTruth(
            site_codes=list(deployments[letter].site_order),
            offered_qps=np.zeros(
                (grid.n_bins, len(deployments[letter].site_order))
            ),
            loss=np.zeros(
                (grid.n_bins, len(deployments[letter].site_order))
            ),
            delay_ms=np.zeros(
                (grid.n_bins, len(deployments[letter].site_order))
            ),
            announced=np.zeros(
                (grid.n_bins, len(deployments[letter].site_order)),
                dtype=bool,
            ),
            legit_offered_qps=np.zeros(grid.n_bins),
            legit_served_qps=np.zeros(grid.n_bins),
            epoch_of_bin=np.zeros(grid.n_bins, dtype=np.int64),
        )
        for letter in letters
    }
    epoch_catchments: dict[str, list[np.ndarray]] = {
        L: [] for L in letters
    }
    day_dates, baseline_dates = window_dates(grid)
    accumulators = {
        letter: {date: DayAccumulator() for date in day_dates}
        for letter in letters
    }

    # Per-(letter, routing version) precomputed share/catchment arrays;
    # versions are stable tokens (unlike id(), which the GC can alias),
    # so entries stay valid for the whole run and recurring routing
    # states (before/during/after each event) hit the cache.
    duplicate_ratio = 1.0 - config.botnet.tail_share
    state = _RunState(
        config=config,
        grid=grid,
        topology=topology,
        facilities=facilities,
        deployments=deployments,
        letters=letters,
        botnet=botnet,
        nl=nl,
        faults=faults,
        probers=probers,
        workloads=workloads,
        truth=truth,
        epoch_catchments=epoch_catchments,
        epoch_cache={},
        accumulators=accumulators,
        day_dates=day_dates,
        buffer_caps={
            letter: deployments[letter].buffer_caps(
                config.overload.buffer_ms
            )
            for letter in letters
        },
        qname_sizes={},
        spill={letter: 0.0 for letter in letters},
    )

    # Segment-batched execution (the default): contiguous runs of bins
    # with no routing change, no scheduled fault, and no controller are
    # computed as (n_bins, n_sites) matrices; proven bit-identical to
    # the per-bin path (tests/scenario/test_engine_batch.py).  Pluggable
    # controllers observe per-bin state mid-loop, so they always take
    # the reference path, as does REPRO_ENGINE_BATCH=0.
    if env_flag(env.ENGINE_BATCH, default=True) and not config.controllers:
        from .batch import run_batched

        run_batched(state)
    else:
        for b in range(grid.n_bins):
            _run_bin(state, b)

    # --- Package outputs. ----------------------------------------------
    atlas = AtlasDataset(
        grid=grid,
        vps=vps,
        letters={letter: probers[letter].finish() for letter in letters},
    )
    if faults is not None:
        faults.mask_atlas(atlas)

    for letter in letters:
        truth[letter].stub_site_by_epoch = np.stack(
            epoch_catchments[letter]
        )

    rssac_rng = rngs.get("rssac.noise")
    rssac: dict[str, tuple[DailyReport, ...]] = {}
    for letter in letters:
        spec = specs[letter]
        reports = [
            build_baseline_report(spec, date, rssac_rng)
            for date in baseline_dates[-config.baseline_days:]
        ]
        for date in day_dates:
            reports.append(
                build_daily_report(
                    spec,
                    date,
                    accumulators[letter][date],
                    duplicate_ratio=duplicate_ratio,
                    spoof_pool_size=config.botnet.spoof_pool_size,
                    rng=rssac_rng,
                )
            )
        rssac[letter] = tuple(reports)
    if faults is not None:
        rssac = faults.filter_rssac(rssac)

    bgp_rng = rngs.get("bgpmon.updates")
    route_changes = {
        letter: collectors.route_changes_per_bin(
            deployments[letter].prefix,
            grid,
            bgp_rng,
            peer_outages=faults.peer_outages if faults is not None else (),
        )
        for letter in letters
    }

    return ScenarioResult(
        config=config,
        grid=grid,
        topology=topology,
        deployments=deployments,
        facilities=facilities,
        botnet=botnet,
        collectors=collectors,
        atlas=atlas,
        rssac=rssac,
        route_changes=route_changes,
        truth=truth,
        nl=nl,
        duplicate_ratio=duplicate_ratio,
        letters=letters,
        quality=(
            faults.quality() if faults is not None else DataQuality()
        ),
    )
