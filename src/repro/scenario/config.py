"""Scenario configuration: one knob bundle for the whole simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..atlas.vps import VpPopulationConfig
from ..attack.botnet import BotnetConfig
from ..attack.events import NOV2015_EVENTS, AttackEvent
from ..bgpmon.collector import BgpmonConfig
from ..faults.plan import FaultPlan
from ..netsim.queueing import OverloadModel
from ..netsim.topology import TopologyConfig
from ..rootdns.letters import LETTERS_SPEC, LetterSpec
from ..util.timegrid import (
    EVENT_WINDOW_SECONDS,
    EVENT_WINDOW_START,
    PAPER_BIN_SECONDS,
    TimeGrid,
)
from .nl import NlConfig

if TYPE_CHECKING:
    from ..defense.controllers import Controller


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Everything needed to simulate the Nov/Dec 2015 events.

    The default sizes (600 stub ASes, 1500 VPs) run the full two-day
    window in tens of seconds; tests shrink them, benchmarks may grow
    them.  ``letters`` restricts the simulation to a subset of root
    letters for focused (and faster) runs.
    """

    seed: int = 42
    n_stubs: int = 600
    n_vps: int = 1500
    letters: tuple[str, ...] | None = None
    events: tuple[AttackEvent, ...] = NOV2015_EVENTS
    topology: TopologyConfig | None = None
    vps: VpPopulationConfig | None = None
    botnet: BotnetConfig = field(default_factory=BotnetConfig)
    bgpmon: BgpmonConfig = field(default_factory=BgpmonConfig)
    overload: OverloadModel = field(default_factory=OverloadModel)
    nl: NlConfig = field(default_factory=NlConfig)
    include_nl: bool = True
    baseline_days: int = 7
    #: Override the letter registry (ablation studies); ``None`` uses
    #: the canonical LETTERS_SPEC.
    custom_letters: dict[str, LetterSpec] | None = None
    #: Observation-window start (POSIX) and length; defaults to the
    #: paper's two days starting 2015-11-30T00:00Z.  The June 2016
    #: scenario preset overrides these.
    window_start: int = EVENT_WINDOW_START
    window_seconds: int = EVENT_WINDOW_SECONDS
    bin_seconds: int = PAPER_BIN_SECONDS
    #: Per-letter defense controllers (repro.defense); letters not
    #: listed keep their built-in static policies.
    controllers: dict[str, Controller] | None = None
    #: Incidental-failure plan (repro.faults): VP dropout, site
    #: hardware failures, BGP session resets, missing RSSAC days,
    #: collector-peer churn.  The default empty plan is free and
    #: leaves seeded outputs bit-identical to a fault-free engine.
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if self.n_stubs <= 0 or self.n_vps <= 0:
            raise ValueError("population sizes must be positive")
        if self.baseline_days < 1:
            raise ValueError("need at least one baseline day")
        if self.window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )
        if self.bin_seconds <= 0:
            raise ValueError(
                f"bin_seconds must be positive, got {self.bin_seconds}"
            )
        if self.letters is not None and not self.letters:
            raise ValueError("letters subset cannot be empty")
        if self.letters is not None:
            registry = (
                self.custom_letters
                if self.custom_letters is not None
                else LETTERS_SPEC
            )
            for letter in self.letters:
                if letter not in registry:
                    raise ValueError(
                        f"unknown letter {letter!r}: not in the effective "
                        f"letter registry {sorted(registry)}"
                    )
        if not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan, got {type(self.faults).__name__}"
            )

    def grid(self) -> TimeGrid:
        """The analysis grid implied by the window settings."""
        if self.window_seconds % self.bin_seconds:
            raise ValueError("bin width must tile the window")
        return TimeGrid(
            start=self.window_start,
            bin_seconds=self.bin_seconds,
            n_bins=self.window_seconds // self.bin_seconds,
        )

    def topology_config(self) -> TopologyConfig:
        """The effective topology config (n_stubs wins)."""
        if self.topology is not None:
            return self.topology
        return TopologyConfig(n_stubs=self.n_stubs)

    def vp_config(self) -> VpPopulationConfig:
        """The effective VP population config (n_vps wins)."""
        if self.vps is not None:
            return self.vps
        return VpPopulationConfig(n_vps=self.n_vps)
