"""The .nl TLD service, co-located with root sites (paper section 3.6).

SIDN operates .nl on four unicast deployments plus multiple anycast
services; two anycast deployments sit near root sites (the paper
anonymises rates and locations).  We place those two nodes in the
shared Frankfurt and Amsterdam facilities with full ingress coupling:
when the root sites in the same facility drown, the .nl nodes' queries
are lost with them, and the remaining .nl servers carry the zone
(Fig. 15 shows the two co-located nodes dropping to nearly zero).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attack.workload import BaselineWorkload
from ..rootdns.facility import FacilityRegistry
from ..util.timegrid import TimeGrid

#: The two co-located anycast nodes and their shared facilities.
COLOCATED_NODES = (
    ("nl-anycast-1", "FRA-DC"),
    ("nl-anycast-2", "AMS-DC"),
)

#: Stand-alone .nl deployments (unicast; not co-located with roots).
STANDALONE_NODES = ("nl-uni-1", "nl-uni-2", "nl-uni-3", "nl-uni-4")


@dataclass(frozen=True, slots=True)
class NlConfig:
    """Knobs for the .nl model."""

    base_qps: float = 60_000.0
    node_capacity_qps: float = 50_000.0
    anycast_share: float = 0.25  # traffic share per co-located node

    def __post_init__(self) -> None:
        if self.base_qps <= 0 or self.node_capacity_qps <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 < self.anycast_share < 0.5:
            raise ValueError("anycast_share must be within (0, 0.5)")


def register_nl_nodes(
    facilities: FacilityRegistry, config: NlConfig
) -> None:
    """Register the co-located .nl nodes into the facility registry.

    Done once at substrate build (the registry persists across reused
    runs and rejects duplicate labels), after every root site has been
    registered, so the spillover walk order matches the original
    engine exactly.
    """
    for name, facility in COLOCATED_NODES:
        facilities.register(
            facility, name, config.node_capacity_qps, coupling=1.0
        )


class NlService:
    """Per-bin served query rates for every .nl node."""

    def __init__(
        self,
        config: NlConfig,
        grid: TimeGrid,
        facilities: FacilityRegistry | None = None,
    ) -> None:
        self.config = config
        self.grid = grid
        self.workload = BaselineWorkload(base_qps=config.base_qps)
        self.node_labels = [name for name, _ in COLOCATED_NODES] + list(
            STANDALONE_NODES
        )
        self.served = np.zeros(
            (grid.n_bins, len(self.node_labels)), dtype=np.float64
        )
        if facilities is not None:
            register_nl_nodes(facilities, config)

    def node_offered(self, timestamp: float) -> dict[str, float]:
        """Offered .nl query rate per node at *timestamp*."""
        total = self.workload.rate_at(timestamp)
        offered: dict[str, float] = {}
        for name, _ in COLOCATED_NODES:
            offered[name] = total * self.config.anycast_share
        rest = total * (1.0 - 2 * self.config.anycast_share)
        for name in STANDALONE_NODES:
            offered[name] = rest / len(STANDALONE_NODES)
        return offered

    def node_offered_matrix(self, timestamps: np.ndarray) -> np.ndarray:
        """Offered rates as ``(n_bins, n_nodes)`` in node-label order.

        Elementwise identical to :meth:`node_offered` per timestamp:
        each column repeats the scalar arithmetic of the dict variant
        (share multiply; remainder split), so every cell is bit-equal
        to the corresponding dict entry.
        """
        totals = self.workload.rates_at(timestamps)
        out = np.empty(
            (totals.shape[0], len(self.node_labels)), dtype=np.float64
        )
        n_colocated = len(COLOCATED_NODES)
        for i in range(n_colocated):
            out[:, i] = totals * self.config.anycast_share
        rest = totals * (1.0 - 2 * self.config.anycast_share)
        per_standalone = rest / len(STANDALONE_NODES)
        for i in range(len(STANDALONE_NODES)):
            out[:, n_colocated + i] = per_standalone
        return out

    def record_bin(
        self,
        bin_index: int,
        facility_extra_loss: dict[str, float],
        offered: dict[str, float] | None = None,
    ) -> None:
        """Record served rates for one bin, given facility spillover.

        *offered* is the :meth:`node_offered` mapping for this bin's
        centre; the engine computes it once in pass 1 and passes it in
        here so it is not derived twice per bin.  ``None`` recomputes
        it (standalone callers).
        """
        if offered is None:
            timestamp = self.grid.bin_start(bin_index) + (
                self.grid.bin_seconds / 2.0
            )
            offered = self.node_offered(timestamp)
        for i, name in enumerate(self.node_labels):
            loss = facility_extra_loss.get(name, 0.0)
            self.served[bin_index, i] = offered[name] * (1.0 - loss)

    def record_bins(
        self,
        start: int,
        offered: np.ndarray,
        extra_loss: np.ndarray,
    ) -> None:
        """Batched :meth:`record_bin` over one contiguous bin run.

        *offered* and *extra_loss* are ``(n_bins_seg, n_nodes)`` in
        node-label order; rows with no spillover carry zeros, which
        reproduce the per-bin ``offered * (1.0 - 0.0)`` arithmetic
        exactly.
        """
        self.served[start:start + offered.shape[0]] = offered * (
            1.0 - extra_loss
        )

    def normalized_series(self) -> np.ndarray:
        """Each node's served rate normalised to its own median.

        This is the shape Fig. 15 plots (absolute rates anonymised).
        """
        medians = np.median(self.served, axis=0)
        medians[medians == 0] = 1.0
        return self.served / medians
