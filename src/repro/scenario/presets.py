"""Scenario presets: the canonical events and the 2016 follow-up.

Section 2.3 ("Generalizing") notes that subsequent root events, like
the one of 2016-06-25, "differ in the details of the event, but pose
the same operational choices".  The June preset exercises exactly
that: a different window, a higher rate, more letters targeted, and a
*varied-qname* traffic mix against which response-rate limiting is far
less effective -- while the analysis pipeline runs unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..attack.botnet import BotnetConfig
from ..attack.events import AttackEvent
from ..util.timegrid import Interval, utc
from .config import ScenarioConfig

#: Start of the June 2016 observation window (48 h, like the paper's).
JUNE2016_WINDOW_START = utc(2016, 6, 24)

#: The 2016-06-25 event: higher rate, varied names, broader targeting.
JUNE2016_EVENT = AttackEvent(
    name="2016-06-25",
    interval=Interval(utc(2016, 6, 25, 8, 0), utc(2016, 6, 25, 10, 30)),
    qname="www.varied-names.example.",
    rate_qps=10.0e6,
    targets=tuple("ABCEFGHIJK"),
    query_wire_bytes=90,
)

JUNE2016_EVENTS = (JUNE2016_EVENT,)

#: A flatter botnet for June 2016: varied names and a wider tail mean
#: response-rate limiting has little to deduplicate.
JUNE2016_BOTNET = BotnetConfig(
    hotspots={
        "LHR": 0.06, "FRA": 0.06, "NRT": 0.05, "AMS": 0.05,
        "IAD": 0.04, "PAO": 0.04,
    },
    n_tail_clusters=220,
    zipf_alpha=1.15,
)


#: Start of the paper's quiet-control window ("two days during the
#: week following the events", section 3.3.1).
QUIET_WINDOW_START = utc(2015, 12, 5)


def quiet_config(**overrides: Any) -> ScenarioConfig:
    """The paper's §3.3.1 control: two normal days, no events.

    Used to confirm that the catchment swings of Figs. 5-6 are
    event-driven: on quiet days, per-site VP counts barely move.
    """
    base = ScenarioConfig(
        events=(),
        window_start=QUIET_WINDOW_START,
    )
    return dataclasses.replace(base, **overrides)


def nov2015_config(**overrides: Any) -> ScenarioConfig:
    """The paper's canonical Nov 30 / Dec 1 2015 scenario."""
    return ScenarioConfig(**overrides)


def june2016_config(**overrides: Any) -> ScenarioConfig:
    """The 2016-06-25 follow-up event scenario."""
    base = ScenarioConfig(
        events=JUNE2016_EVENTS,
        window_start=JUNE2016_WINDOW_START,
        botnet=JUNE2016_BOTNET,
    )
    return dataclasses.replace(base, **overrides)
