"""Segment-batched engine execution (``REPRO_ENGINE_BATCH``).

The reference bin loop (:func:`repro.scenario.engine._run_bin`) walks
the window one ten-minute bin at a time: four python passes per bin,
per-site dict bookkeeping, one small :meth:`OverloadModel.evaluate`
per letter-bin.  Almost all of that state is piecewise-constant: the
routing tables only change when a policy acts or a fault flaps a
session, and outside the attack events every site sits far below its
loss knee.  This module exploits that structure without changing a
single output bit.

The window is partitioned into maximal *segments* -- contiguous runs
of bins where, for every letter,

* no scheduled fault perturbs routing or capacity
  (:meth:`FaultRuntime.disruptive_bins`; those bins run through the
  per-bin reference path), and
* the policy control loop provably takes no action, so each letter's
  routing table (and with it every per-epoch share vector) is constant
  across the run.

Within a segment everything is computed as ``(n_bins_seg, n_sites)``
matrices: bin centres, baseline rates, attack rates, offered loads as
rank-1 updates against the cached per-epoch share vectors, one
:meth:`OverloadModel.evaluate` per letter-segment, batched prober /
.nl / truth / RSSAC folds.  The only genuinely sequential quantity is
the letter-flip ``retry_spill`` feedback, which is carried through the
segment as a cheap per-bin scalar recurrence.

Bit-identity argument (validated by
``tests/scenario/test_engine_batch.py``):

* All matrix operations here are elementwise or row-wise over the same
  float64 values the per-bin path uses; NumPy evaluates them with the
  same scalar semantics, so rows of a batched result equal the
  per-bin vectors bit for bit.  In particular ``(legit + spill)``
  is summed *before* the share multiply, never distributed.
* Conservative gates (with a relative slack far above accumulated
  rounding error) decide per bin whether every site is strictly below
  the loss knee and every facility strictly below its shared ingress.
  Gated-quiet bins have loss exactly ``0.0`` and empty facility
  spillover by construction of the overload model, so their spill
  contribution collapses to the unrouted term.  Gate failure never
  changes values -- it only routes the bin through the exact per-bin
  arithmetic (small vectors, the real ``spillover`` walk).
* Policy actions are *predicted* conservatively during the scan
  (reaction thresholds, calm-counter recovery, standby consistency).
  A predicted action ends the segment at that bin and the real
  :meth:`LetterDeployment.apply_policies` runs there, so every state
  transition is performed by the reference code itself.  Calm counters
  for withdrawn/partial sites are tracked scalar-exactly (they are
  small integers) and written back before the real call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attack.events import active_event_index, attack_rates
from ..attack.workload import retry_spill
from ..dns.message import make_query
from ..netsim.bgp import RoutingTable
from ..rootdns.deployment import LetterDeployment
from ..rootdns.sites import DEFAULT_RECOVERY_BINS, SitePolicy
from .engine import OVERLOAD_RHO, _EpochData, _RunState, _epoch_for, _run_bin

#: Relative slack applied to the conservative quiet-bin gates.  The
#: gate expressions accumulate a handful of float64 roundings (each a
#: ~1e-16 relative error), so a 1e-9 margin is far beyond any possible
#: discrepancy between the bound and the exactly-computed quantity
#: while remaining negligible against the knee (0.95) and facility
#: headroom it guards.
_GATE_SLACK = 1e-9


@dataclass(slots=True)
class _TrackedSite:
    """One site whose calm counter the scan must carry bin to bin."""

    code: str
    index: int
    partial: bool          # partial-withdraw recovery vs re-announce
    eligible: bool         # may the recovery action actually fire?
    threshold: float       # real reaction threshold (calm freeze)


@dataclass(slots=True)
class _LetterSegment:
    """Per-letter precomputed state for one candidate segment."""

    dep: LetterDeployment
    table: RoutingTable
    ed: _EpochData
    capacity: np.ndarray
    announced: np.ndarray
    attack_vec: np.ndarray        # (nb_max,)
    legit_vec: np.ndarray         # (nb_max,)
    attack_site_mat: np.ndarray   # (nb_max, n_sites)
    base_mat: np.ndarray          # offered load excluding spill
    rho0_max: np.ndarray          # (nb_max,) spill-free rho upper rows
    spill_over_cap: float         # max(legit_share / capacity)
    trigger_thr: np.ndarray       # (n_sites,) reaction thresholds
    tracked: list[_TrackedSite]
    calm: dict[str, int]
    standby_bad: bool
    unrouted_lost: float          # max(0.0, 1 - legit_total), per bin
    spill_arr: np.ndarray         # (nb_max,) spill entering each bin
    extra_rows: dict[int, np.ndarray] = field(default_factory=dict)


@dataclass(slots=True)
class _SpanCache:
    """Whole-run arrays shared by every segment.

    Workload and attack rates depend only on the bin timestamps, and
    the share-product matrices only on ``(letter, table.version)`` on
    top of that; both are computed elementwise, so a slice of the
    full-span array is bit-identical to computing the same expression
    on the sliced timestamp vector.  Segments therefore slice instead
    of recomputing.  The mat cache also pins the capacity base array:
    cap-scale faults only act inside per-bin fault bins (never within
    a segment), so the base object is stable, but a changed object
    invalidates the entry defensively.
    """

    tc_full: np.ndarray
    active_full: np.ndarray
    nl_full: np.ndarray | None
    vec: dict[str, tuple[np.ndarray, np.ndarray]]
    mat: dict[
        tuple[str, int],
        tuple[np.ndarray, np.ndarray, np.ndarray, float, np.ndarray],
    ]


def _prepare_letter(
    state: _RunState,
    letter: str,
    start: int,
    limit: int,
    cache: _SpanCache,
) -> _LetterSegment:
    """Resolve one letter's routing-constant arrays for a segment."""
    dep = state.deployments[letter]
    table, ed = _epoch_for(state, letter)
    capacity = dep.capacity_vector
    announced = dep.announced_mask()
    vecs = cache.vec.get(letter)
    if vecs is None:
        vecs = (
            attack_rates(state.config.events, letter, cache.tc_full),
            state.workloads[letter].rates_at(cache.tc_full),
        )
        cache.vec[letter] = vecs
    attack_vec = vecs[0][start:limit]
    legit_vec = vecs[1][start:limit]
    key = (letter, table.version)
    mats = cache.mat.get(key)
    if mats is None or mats[4] is not capacity:
        asm_full = vecs[0][:, None] * ed.bot_share[None, :]
        base_full = (
            asm_full + vecs[1][:, None] * ed.legit_share[None, :]
        )
        mats = (
            asm_full,
            base_full,
            (base_full / capacity).max(axis=1),
            float((ed.legit_share / capacity).max()),
            capacity,
        )
        cache.mat[key] = mats
    attack_site_mat = mats[0][start:limit]
    base_mat = mats[1][start:limit]
    rho0_max = mats[2][start:limit]
    spill_over_cap = mats[3]

    n_sites = len(dep.site_order)
    trigger_thr = np.full(n_sites, np.inf)
    tracked: list[_TrackedSite] = []
    calm: dict[str, int] = {}
    any_withdrawn_primary = False
    standby_bad = False
    for i, code in enumerate(dep.site_order):
        st = dep.states[code]
        spec = st.spec
        up = bool(announced[i])
        if not spec.initially_announced:
            continue
        if not up:
            any_withdrawn_primary = True
            tracked.append(
                _TrackedSite(
                    code=code,
                    index=i,
                    partial=False,
                    eligible=st.may_reannounce(),
                    threshold=spec.withdraw_threshold,
                )
            )
            calm[code] = st.calm_bins
            continue
        if st.partial:
            tracked.append(
                _TrackedSite(
                    code=code,
                    index=i,
                    partial=True,
                    eligible=True,
                    threshold=spec.withdraw_threshold,
                )
            )
            calm[code] = st.calm_bins
            # An already-partial site cannot partial-withdraw again,
            # so its reaction threshold stays infinite.
            continue
        if spec.policy in (
            SitePolicy.WITHDRAW, SitePolicy.PARTIAL_WITHDRAW
        ):
            trigger_thr[i] = spec.withdraw_threshold
    for i, code in enumerate(dep.site_order):
        st = dep.states[code]
        if st.spec.initially_announced:
            continue
        if bool(announced[i]) != any_withdrawn_primary:
            standby_bad = True

    return _LetterSegment(
        dep=dep,
        table=table,
        ed=ed,
        capacity=capacity,
        announced=announced,
        attack_vec=attack_vec,
        legit_vec=legit_vec,
        attack_site_mat=attack_site_mat,
        base_mat=base_mat,
        rho0_max=rho0_max,
        spill_over_cap=spill_over_cap,
        trigger_thr=trigger_thr,
        tracked=tracked,
        calm=calm,
        standby_bad=standby_bad,
        unrouted_lost=max(0.0, 1.0 - ed.legit_total),
        spill_arr=np.zeros(limit - start),
    )


def _facility_margins(
    state: _RunState,
    segs: dict[str, _LetterSegment],
    nl_mat: np.ndarray | None,
    nb_max: int,
) -> np.ndarray:
    """Per-bin headroom of the tightest facility, spill excluded.

    ``margins[i]`` is ``min_f (capacity_f - (1 + slack) * base_f[i])``
    over all facilities *f*, where ``base_f`` sums the spill-free
    offered load of every member.  A bin whose total spill (a further
    upper bound on what spill can add to any one facility) fits under
    this margin cannot overflow any facility, so the real
    :meth:`FacilityRegistry.spillover` walk would return ``{}``.
    """
    label_cols: dict[str, np.ndarray] = {}
    for seg in segs.values():
        for i, label in enumerate(seg.dep.site_labels):
            label_cols[label] = seg.base_mat[:, i]
    if state.nl is not None and nl_mat is not None:
        for j, name in enumerate(state.nl.node_labels):
            label_cols[name] = nl_mat[:, j]
    margins = np.full(nb_max, np.inf)
    for _facility, cap, members in state.facilities.spillover_layout():
        base = np.zeros(nb_max)
        for member in members:
            col = label_cols.get(member.label)
            if col is not None:
                base = base + col
        margins = np.minimum(margins, cap - base * (1.0 + _GATE_SLACK))
    return margins


def run_batched(state: _RunState) -> None:
    """Drive the whole bin loop, batching across maximal segments."""
    faults = state.faults
    fault_bins = (
        faults.disruptive_bins() if faults is not None else frozenset()
    )
    grid = state.grid
    n_bins = grid.n_bins
    ts_full = grid.bin_start(0) + np.arange(
        n_bins, dtype=np.int64
    ) * grid.bin_seconds
    tc_full = ts_full + grid.bin_seconds / 2.0
    cache = _SpanCache(
        tc_full=tc_full,
        active_full=active_event_index(state.config.events, tc_full),
        nl_full=(
            state.nl.node_offered_matrix(tc_full)
            if state.nl is not None
            else None
        ),
        vec={},
        mat={},
    )
    b = 0
    while b < n_bins:
        if b in fault_bins:
            _run_bin(state, b)
            b += 1
            continue
        limit = b + 1
        while limit < n_bins and limit not in fault_bins:
            limit += 1
        b = _run_segment(state, b, limit, cache)


def _run_segment(
    state: _RunState, start: int, limit: int, cache: _SpanCache
) -> int:
    """Run bins ``start..end`` batched (``end < limit``); return
    ``end + 1``.

    The segment ends early -- at the first bin where a policy trigger
    is predicted -- or at *limit*.  The trigger bin itself is part of
    the segment (its outputs batch like any other bin; the reference
    path also records a bin *before* running its policies), and the
    real ``apply_policies`` runs for every letter at that bin.
    """
    grid = state.grid
    config = state.config
    letters = state.letters
    nb_max = limit - start

    segs = {
        letter: _prepare_letter(state, letter, start, limit, cache)
        for letter in letters
    }
    nl = state.nl
    nl_mat = cache.nl_full[start:limit] if cache.nl_full is not None else None
    nl_labels = nl.node_labels if nl is not None else []
    nl_extra_rows: dict[int, np.ndarray] = {}
    margins = _facility_margins(state, segs, nl_mat, nb_max)
    active_idx = cache.active_full[start:limit]
    knee = config.overload.loss_knee
    overload = config.overload

    spill = state.spill
    end_off = nb_max - 1
    triggered = False
    rho_of_bin: dict[str, np.ndarray] = {}

    # Pure-quiet bins with zero inbound spill are fully predictable:
    # losses are identically 0.0 (``unrouted_lost == 0`` and gated
    # loss is exactly zero), so spill stays the all-zero dict and the
    # per-bin scan below would be a no-op for every letter.  Runs of
    # such bins are skipped in one step; ``retry_spill`` on all-zero
    # losses reproduces the all-zero dict the reference carries.
    skippable = quiet0 = None
    if (
        not any(seg.tracked for seg in segs.values())
        and not any(seg.standby_bad for seg in segs.values())
        # unrouted_lost is max(0, .); <= 0 is an exact zero test.
        and all(seg.unrouted_lost <= 0.0 for seg in segs.values())
    ):
        quiet0 = margins >= 0.0
        for seg in segs.values():
            quiet0 &= seg.rho0_max * (1.0 + _GATE_SLACK) <= knee
        skippable = quiet0

    off = 0
    while off < nb_max:
        if (
            skippable is not None
            and skippable[off]
            # Spill terms are non-negative, so <= 0 tests exact zero.
            and all(v <= 0.0 for v in spill.values())
        ):
            nz = np.flatnonzero(~skippable[off:])
            run = int(nz[0]) if nz.size else nb_max - off
            spill = retry_spill(
                {letter: 0.0 for letter in letters}, letters
            )
            off += run
            continue
        for letter in letters:
            segs[letter].spill_arr[off] = spill[letter]
        total_spill = 0.0
        for letter in letters:
            total_spill += spill[letter]

        exact = total_spill * (1.0 + _GATE_SLACK) > margins[off]
        if not exact:
            for letter in letters:
                seg = segs[letter]
                bound = float(seg.rho0_max[off]) + (
                    spill[letter] * seg.spill_over_cap
                )
                if bound * (1.0 + _GATE_SLACK) > knee:
                    exact = True
                    break

        # Exact bins replay the reference arithmetic on small vectors:
        # the spill-dependent offered rows, the real facility walk,
        # per-letter loss.  Quiet bins have loss exactly 0 and no
        # spillover, so only the unrouted spill term survives.
        trigger = False
        pending: dict[str, dict[str, int]] = {}
        losses: dict[str, float] = {}
        if exact:
            offered_by_label: dict[str, float] = {}
            rows: dict[str, tuple[np.ndarray, np.ndarray]] = {}
            for letter in letters:
                seg = segs[letter]
                attack_site = seg.attack_site_mat[off]
                legit_site = (
                    seg.legit_vec[off] + spill[letter]
                ) * seg.ed.legit_share
                offered = attack_site + legit_site
                labels = seg.dep.site_labels
                for i in np.flatnonzero(offered > 0):
                    offered_by_label[labels[i]] = float(offered[i])
                rows[letter] = (legit_site, offered)
            if nl_mat is not None:
                for j, name in enumerate(nl_labels):
                    offered_by_label[name] = float(nl_mat[off, j])
            facility_extra = state.facilities.spillover(offered_by_label)
            if nl is not None:
                nl_extra_rows[off] = np.array(
                    [facility_extra.get(n, 0.0) for n in nl_labels]
                )
            for letter in letters:
                seg = segs[letter]
                legit_site, offered = rows[letter]
                rho, loss, _delay = overload.evaluate(
                    offered, seg.capacity
                )
                extra = np.array(
                    [
                        facility_extra.get(label, 0.0)
                        for label in seg.dep.site_labels
                    ]
                )
                seg.extra_rows[off] = extra
                combined = 1.0 - (1.0 - loss) * (1.0 - extra)
                lost = float((legit_site * combined).sum())
                lost += seg.unrouted_lost * (
                    seg.legit_vec[off] + spill[letter]
                )
                losses[letter] = lost
                if (rho > seg.trigger_thr).any():
                    trigger = True
                pending[letter] = _step_calm(
                    seg, off, rho
                )
                if pending[letter].pop("__trigger__", 0):
                    trigger = True
        else:
            for letter in letters:
                seg = segs[letter]
                losses[letter] = seg.unrouted_lost * (
                    seg.legit_vec[off] + spill[letter]
                )
                pending[letter] = _step_calm(seg, off, None)
                if pending[letter].pop("__trigger__", 0):
                    trigger = True
        if off == 0 and any(s.standby_bad for s in segs.values()):
            trigger = True

        spill = retry_spill(
            {letter: losses[letter] for letter in letters}, letters
        )
        if trigger:
            end_off = off
            triggered = True
            break
        for letter in letters:
            segs[letter].calm.update(pending[letter])
        off += 1

    state.spill = spill
    nb = end_off + 1

    # --- Batched outputs for bins start..start+nb-1. -------------------
    date_of = [
        min(
            len(state.day_dates) - 1,
            (start + off) * grid.bin_seconds // 86_400,
        )
        for off in range(nb)
    ]
    for letter in letters:
        seg = segs[letter]
        spill_arr = seg.spill_arr[:nb]
        legit_offered_vec = seg.legit_vec[:nb] + spill_arr
        legit_site_mat = (
            legit_offered_vec[:, None] * seg.ed.legit_share[None, :]
        )
        offered_mat = seg.attack_site_mat[:nb] + legit_site_mat
        rho_mat, loss_mat, delay_mat = overload.evaluate(
            offered_mat, seg.capacity
        )
        delay_mat = np.minimum(delay_mat, state.buffer_caps[letter])
        extra_mat = np.zeros_like(loss_mat)
        for off, row in seg.extra_rows.items():
            if off < nb:
                extra_mat[off] = row
        combined = 1.0 - (1.0 - loss_mat) * (1.0 - extra_mat)
        overloaded = rho_mat > OVERLOAD_RHO
        state.probers[letter].record_bins(
            start, seg.table, combined, delay_mat, overloaded
        )
        rho_of_bin[letter] = rho_mat[nb - 1]

        t = state.truth[letter]
        sl = slice(start, start + nb)
        t.offered_qps[sl] = offered_mat
        t.loss[sl] = combined
        t.delay_ms[sl] = delay_mat
        t.announced[sl] = seg.announced
        t.epoch_of_bin[sl] = seg.ed.epoch

        accepted = 1.0 - combined
        attack_acc = (seg.attack_site_mat[:nb] * accepted).sum(axis=1)
        legit_acc = (legit_site_mat * accepted).sum(axis=1)
        t.legit_offered_qps[sl] = legit_offered_vec
        t.legit_served_qps[sl] = legit_acc
        spill_frac = np.zeros(nb)
        np.divide(
            spill_arr,
            legit_offered_vec,
            out=spill_frac,
            where=legit_offered_vec > 0,
        )

        qp = np.full(nb, -1, dtype=np.int64)
        rp = np.full(nb, -1, dtype=np.int64)
        payload_mask = (active_idx[:nb] >= 0) & (seg.attack_vec[:nb] > 0)
        for off in np.flatnonzero(payload_mask):
            ev = config.events[int(active_idx[off])]
            size = state.qname_sizes.get(ev.qname)
            if size is None:
                size = make_query(0, ev.qname).wire_size
                state.qname_sizes[ev.qname] = size
            qp[off] = size
            rp[off] = ev.response_wire_bytes - 40

        legit_kept = legit_acc * (1.0 - spill_frac)
        spill_kept = legit_acc * spill_frac
        off = 0
        while off < nb:
            stop = off
            while stop < nb and date_of[stop] == date_of[off]:
                stop += 1
            acc = state.accumulators[letter][
                state.day_dates[date_of[off]]
            ]
            acc.add_bins(
                legit_kept[off:stop],
                spill_kept[off:stop],
                attack_acc[off:stop],
                grid.bin_seconds,
                qp[off:stop],
                rp[off:stop],
            )
            off = stop

    if nl is not None and nl_mat is not None:
        nl_extra = np.zeros((nb, len(nl_labels)))
        for off, row in nl_extra_rows.items():
            if off < nb:
                nl_extra[off] = row
        nl.record_bins(start, nl_mat[:nb], nl_extra)

    # --- The trigger bin's real control loop. --------------------------
    if triggered:
        for letter in letters:
            seg = segs[letter]
            for site in seg.tracked:
                seg.dep.states[site.code].calm_bins = seg.calm[site.code]
        ts_end = grid.bin_start(start + end_off)
        for letter in letters:
            seg = segs[letter]
            seg.dep.apply_policies(
                rho_of_bin[letter],
                letter_under_attack=bool(seg.attack_vec[end_off] > 0),
                timestamp=float(ts_end + grid.bin_seconds),
            )
    else:
        for letter in letters:
            seg = segs[letter]
            for site in seg.tracked:
                seg.dep.states[site.code].calm_bins = seg.calm[site.code]

    return start + nb


def _step_calm(
    seg: _LetterSegment, off: int, rho: np.ndarray | None
) -> dict[str, int]:
    """Prospective calm-counter updates for one bin.

    Mirrors one ``apply_policies`` pass over the tracked sites:
    under-attack bins reset, calm bins increment, and an increment
    reaching the recovery threshold for an *eligible* site predicts a
    policy action (returned under the ``"__trigger__"`` key so the
    caller ends the segment there instead of committing the update --
    the real ``apply_policies`` performs that bin's transition).  A
    partial site whose utilisation exceeds its reaction threshold
    takes the no-op reaction branch instead, freezing its counter --
    only possible in exact bins, since gated bins sit below the knee.
    """
    under_attack = bool(seg.attack_vec[off] > 0)
    pending: dict[str, int] = {}
    trigger = False
    for site in seg.tracked:
        if (
            site.partial
            and rho is not None
            and float(rho[site.index]) > site.threshold
        ):
            pending[site.code] = seg.calm[site.code]
            continue
        if under_attack:
            pending[site.code] = 0
            continue
        new_calm = seg.calm[site.code] + 1
        if new_calm >= DEFAULT_RECOVERY_BINS and site.eligible:
            trigger = True
        pending[site.code] = new_calm
    pending["__trigger__"] = 1 if trigger else 0
    return pending
