"""Canonical flattening of a :class:`ScenarioResult` into named arrays.

Every bit-equality check in the repo -- the golden-equivalence fixture,
the CI determinism gate, and the sweep engine's parallel-vs-serial
guarantee -- compares simulated outputs through this one flattener, so
"the outputs" always means the same set of arrays: per-letter truth
series, Atlas matrices, RSSAC counters and histograms, BGPmon route
changes, and the .nl series when present.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from .engine import ScenarioResult


def result_arrays(result: ScenarioResult) -> dict[str, np.ndarray]:
    """Flatten a ScenarioResult into named arrays for exact comparison."""
    out: dict[str, np.ndarray] = {}
    for letter in result.letters:
        t = result.truth[letter]
        p = f"{letter}/truth"
        out[f"{p}/offered_qps"] = t.offered_qps
        out[f"{p}/loss"] = t.loss
        out[f"{p}/delay_ms"] = t.delay_ms
        out[f"{p}/announced"] = t.announced
        out[f"{p}/legit_offered_qps"] = t.legit_offered_qps
        out[f"{p}/legit_served_qps"] = t.legit_served_qps
        out[f"{p}/epoch_of_bin"] = t.epoch_of_bin
        out[f"{p}/stub_site_by_epoch"] = t.stub_site_by_epoch

        obs = result.atlas.letters[letter]
        out[f"{letter}/atlas/site_idx"] = obs.site_idx
        out[f"{letter}/atlas/rtt_ms"] = obs.rtt_ms
        out[f"{letter}/atlas/server"] = obs.server

        out[f"{letter}/route_changes"] = result.route_changes[letter]

        reports = result.rssac[letter]
        out[f"{letter}/rssac/queries"] = np.array(
            [r.queries for r in reports]
        )
        out[f"{letter}/rssac/responses"] = np.array(
            [r.responses for r in reports]
        )
        out[f"{letter}/rssac/unique_sources"] = np.array(
            [r.unique_sources for r in reports]
        )
        out[f"{letter}/rssac/query_hist"] = np.array(
            [
                (i, edge, count)
                for i, r in enumerate(reports)
                for edge, count in sorted(r.query_size_hist.items())
            ],
            dtype=np.float64,
        ).reshape(-1, 3)
        out[f"{letter}/rssac/response_hist"] = np.array(
            [
                (i, edge, count)
                for i, r in enumerate(reports)
                for edge, count in sorted(r.response_size_hist.items())
            ],
            dtype=np.float64,
        ).reshape(-1, 3)
    if result.nl is not None:
        out["nl/served"] = result.nl.served
    return out


def diff_arrays(
    a: dict[str, np.ndarray], b: dict[str, np.ndarray]
) -> list[str]:
    """Names of arrays that differ (shape, dtype, or any cell) or are
    present on only one side.  Empty means bit-identical."""
    mismatches: list[str] = []
    for name in sorted(a):
        if name not in b:
            mismatches.append(name)
            continue
        want, got = np.asarray(a[name]), np.asarray(b[name])
        if (
            want.shape != got.shape
            or want.dtype != got.dtype
            or not np.array_equal(want, got, equal_nan=True)
        ):
            mismatches.append(name)
    mismatches.extend(sorted(set(b) - set(a)))
    return mismatches
