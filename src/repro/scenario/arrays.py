"""Canonical flattening of a :class:`ScenarioResult` into named arrays.

Every bit-equality check in the repo -- the golden-equivalence fixture,
the CI determinism gate, and the sweep engine's parallel-vs-serial
guarantee -- compares simulated outputs through this one flattener, so
"the outputs" always means the same set of arrays: per-letter truth
series, Atlas matrices, RSSAC counters and histograms, BGPmon route
changes, and the .nl series when present.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from .engine import ScenarioResult, Substrate


def result_arrays(result: ScenarioResult) -> dict[str, np.ndarray]:
    """Flatten a ScenarioResult into named arrays for exact comparison."""
    out: dict[str, np.ndarray] = {}
    for letter in result.letters:
        t = result.truth[letter]
        p = f"{letter}/truth"
        out[f"{p}/offered_qps"] = t.offered_qps
        out[f"{p}/loss"] = t.loss
        out[f"{p}/delay_ms"] = t.delay_ms
        out[f"{p}/announced"] = t.announced
        out[f"{p}/legit_offered_qps"] = t.legit_offered_qps
        out[f"{p}/legit_served_qps"] = t.legit_served_qps
        out[f"{p}/epoch_of_bin"] = t.epoch_of_bin
        out[f"{p}/stub_site_by_epoch"] = t.stub_site_by_epoch

        obs = result.atlas.letters[letter]
        out[f"{letter}/atlas/site_idx"] = obs.site_idx
        out[f"{letter}/atlas/rtt_ms"] = obs.rtt_ms
        out[f"{letter}/atlas/server"] = obs.server

        out[f"{letter}/route_changes"] = result.route_changes[letter]

        reports = result.rssac[letter]
        out[f"{letter}/rssac/queries"] = np.array(
            [r.queries for r in reports]
        )
        out[f"{letter}/rssac/responses"] = np.array(
            [r.responses for r in reports]
        )
        out[f"{letter}/rssac/unique_sources"] = np.array(
            [r.unique_sources for r in reports]
        )
        out[f"{letter}/rssac/query_hist"] = np.array(
            [
                (i, edge, count)
                for i, r in enumerate(reports)
                for edge, count in sorted(r.query_size_hist.items())
            ],
            dtype=np.float64,
        ).reshape(-1, 3)
        out[f"{letter}/rssac/response_hist"] = np.array(
            [
                (i, edge, count)
                for i, r in enumerate(reports)
                for edge, count in sorted(r.response_size_hist.items())
            ],
            dtype=np.float64,
        ).reshape(-1, 3)
    if result.nl is not None:
        out["nl/served"] = result.nl.served
    return out


def substrate_arrays(substrate: Substrate) -> dict[str, np.ndarray]:
    """Flatten a substrate's shared-constant half into named arrays.

    The other side of the serialization split: where
    :func:`result_arrays` canonicalizes what a run *produced*,
    this canonicalizes what every cell sharing a substrate signature
    *consumes* -- the arrays
    :func:`~repro.scenario.engine.substrate_constant_arrays`
    enumerates and the zero-copy sweep layer (:mod:`repro.sweep.shm`)
    ships through shared memory.  Round-trip checks compare exported
    and reattached substrates through :func:`diff_arrays`, exactly
    like results.
    """
    from .engine import substrate_constant_arrays

    return dict(substrate_constant_arrays(substrate))


def diff_arrays(
    a: dict[str, np.ndarray], b: dict[str, np.ndarray]
) -> list[str]:
    """Names of arrays that differ (shape, dtype, or any cell) or are
    present on only one side.  Empty means bit-identical."""
    mismatches: list[str] = []
    for name in sorted(a):
        if name not in b:
            mismatches.append(name)
            continue
        want, got = np.asarray(a[name]), np.asarray(b[name])
        if want.shape != got.shape or want.dtype != got.dtype:
            mismatches.append(name)
            continue
        # equal_nan only applies to float/complex dtypes; asking for
        # it on string arrays (substrate constants carry unicode ids)
        # is a TypeError.
        equal_nan = want.dtype.kind in "fc"
        if not np.array_equal(want, got, equal_nan=equal_nan):
            mismatches.append(name)
    mismatches.extend(sorted(set(b) - set(a)))
    return mismatches
