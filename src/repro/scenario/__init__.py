"""Scenario orchestration: the Nov/Dec 2015 event simulation."""

from .arrays import diff_arrays, result_arrays, substrate_arrays
from .config import ScenarioConfig
from .engine import (
    BASELINE_DATES,
    EVENT_DATES,
    LetterTruth,
    ScenarioResult,
    Substrate,
    build_substrate,
    simulate,
    substrate_signature,
)
from .nl import COLOCATED_NODES, STANDALONE_NODES, NlConfig, NlService
from .presets import (
    JUNE2016_EVENT,
    JUNE2016_EVENTS,
    JUNE2016_WINDOW_START,
    QUIET_WINDOW_START,
    june2016_config,
    nov2015_config,
    quiet_config,
)

__all__ = [
    "BASELINE_DATES",
    "COLOCATED_NODES",
    "EVENT_DATES",
    "LetterTruth",
    "NlConfig",
    "NlService",
    "JUNE2016_EVENT",
    "JUNE2016_EVENTS",
    "JUNE2016_WINDOW_START",
    "QUIET_WINDOW_START",
    "STANDALONE_NODES",
    "ScenarioConfig",
    "ScenarioResult",
    "Substrate",
    "build_substrate",
    "diff_arrays",
    "june2016_config",
    "nov2015_config",
    "quiet_config",
    "result_arrays",
    "simulate",
    "substrate_arrays",
    "substrate_signature",
]
