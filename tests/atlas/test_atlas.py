"""Tests for the measurement platform: VPs, probing, probe records."""

import numpy as np
import pytest

from repro.atlas import (
    BOGUS_ANSWER,
    VpPopulationConfig,
    build_vps,
    to_probe_records,
)
from repro.core import bin_probe_records
from repro.datasets import RESP_BOGUS, RESP_NOT_PROBED
from repro.netsim import TopologyConfig, build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig(n_stubs=150),
                          np.random.default_rng(4))


class TestVpPopulation:
    def test_count_and_attachment(self, topo):
        vps = build_vps(topo, VpPopulationConfig(n_vps=200),
                        np.random.default_rng(1))
        assert len(vps) == 200
        assert set(int(a) for a in vps.asns) <= set(topo.stub_asns)

    def test_europe_bias_inherited(self, topo):
        vps = build_vps(topo, VpPopulationConfig(n_vps=400),
                        np.random.default_rng(1))
        assert vps.europe_fraction() > 0.45

    def test_firmware_and_hijack_fractions(self, topo):
        config = VpPopulationConfig(
            n_vps=1000, old_firmware_fraction=0.1, hijacked_fraction=0.05
        )
        vps = build_vps(topo, config, np.random.default_rng(1))
        old = (vps.firmware < 4570).mean()
        assert 0.05 < old < 0.15
        assert 0.02 < vps.hijacked.mean() < 0.09

    def test_deterministic(self, topo):
        config = VpPopulationConfig(n_vps=100)
        a = build_vps(topo, config, np.random.default_rng(9))
        b = build_vps(topo, config, np.random.default_rng(9))
        assert (a.asns == b.asns).all()
        assert (a.lats == b.lats).all()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VpPopulationConfig(n_vps=0)
        with pytest.raises(ValueError):
            VpPopulationConfig(hijacked_fraction=1.5)


class TestProbingOutput:
    def test_a_root_probed_every_third_bin(self, dataset):
        obs = dataset.letter("A")
        probed = obs.site_idx != RESP_NOT_PROBED
        fraction = probed.mean()
        assert 0.28 < fraction < 0.40

    def test_other_letters_probed_every_bin(self, dataset):
        obs = dataset.letter("K")
        assert (obs.site_idx != RESP_NOT_PROBED).all()

    def test_hijacked_vps_return_bogus(self, dataset):
        hijacked = dataset.vps.hijacked
        if not hijacked.any():
            pytest.skip("no hijacked VP in this draw")
        obs = dataset.letter("K")
        bogus_rate = (obs.site_idx[:, hijacked] == RESP_BOGUS).mean()
        assert bogus_rate > 0.95

    def test_hijacked_rtts_are_fast(self, dataset):
        hijacked = dataset.vps.hijacked
        if not hijacked.any():
            pytest.skip("no hijacked VP in this draw")
        obs = dataset.letter("K")
        rtts = obs.rtt_ms[:, hijacked]
        assert np.nanmedian(rtts) < 7.0

    def test_successful_rtts_plausible(self, dataset):
        obs = dataset.letter("L")
        success = obs.site_idx >= 0
        rtts = obs.rtt_ms[success]
        assert np.isfinite(rtts).all()
        assert (rtts > 0).all()
        assert np.median(rtts) < 300.0

    def test_servers_populated_on_success(self, dataset):
        obs = dataset.letter("K")
        success = obs.site_idx >= 0
        assert (obs.server[success] >= 1).all()
        assert (obs.server[~success] == 0).all()


class TestProbeLevelRoundTrip:
    def test_records_rebin_to_original(self, dataset):
        """Expanding bins to probe records and re-binning them must
        reproduce the per-bin outcomes (site choice and class)."""
        rng = np.random.default_rng(5)
        vp_ids = dataset.vps.ids[:25]
        records = list(
            to_probe_records(dataset, "K", rng, vp_ids=vp_ids)
        )
        assert records, "no records generated"
        obs = dataset.letter("K")
        rebinned = bin_probe_records(
            records,
            "K",
            dataset.grid,
            vp_ids=[int(v) for v in vp_ids],
            site_codes=obs.site_codes,
        )
        # Positions of these VPs in the original matrices.
        pos = [int(np.where(dataset.vps.ids == v)[0][0]) for v in vp_ids]
        original = obs.site_idx[:, pos]
        assert (rebinned.site_idx == original).all()

    def test_bogus_answer_matches_no_letter(self):
        from repro.dns import matches_any_letter

        assert matches_any_letter(BOGUS_ANSWER) is None

    def test_record_fields(self, dataset):
        rng = np.random.default_rng(5)
        records = list(
            to_probe_records(
                dataset, "B", rng, vp_ids=dataset.vps.ids[:5]
            )
        )
        for record in records[:50]:
            assert record.letter == "B"
            if record.answer is not None and record.answer != BOGUS_ANSWER:
                assert record.rtt_ms is not None
                assert record.rcode == 0


class TestSiteBinConditions:
    def test_misaligned_arrays_rejected(self):
        import numpy as np
        import pytest as _pytest

        from repro.atlas import SiteBinConditions

        with _pytest.raises(ValueError):
            SiteBinConditions(
                loss=np.zeros(3),
                delay_ms=np.zeros(4),
                overloaded=np.zeros(3, dtype=bool),
            )
