"""Capstone: the paper's Table 1, one test per key observation.

Table 1 summarises the paper's findings; each test here asserts the
corresponding behaviour on the shared simulated scenario, so the
reproduction's headline claims are continuously verified.
"""

import numpy as np
import pytest

from repro.core import (
    behaviour_census,
    clean_dataset,
    collateral_sites,
    count_flips,
    event_size_table,
    nl_event_minimum,
    server_reachability,
    vps_per_site,
    worst_responsiveness,
)
from repro.rootdns import ATTACKED_LETTERS, RSSAC_REPORTING_LETTERS, SitePolicy
from repro.util import EVENT_1


@pytest.fixture(scope="module")
def cleaned(dataset):
    ds, _ = clean_dataset(dataset)
    return ds


class TestSection22:
    """'design choices under stress are withdraw or absorb; best
    depends on attackers vs. capacity per catchment'"""

    def test_both_policies_occur_in_the_event(self, scenario):
        actions = {
            e.action
            for dep in scenario.deployments.values()
            for e in dep.policy_log
        }
        assert "withdraw" in actions   # E's sites, H's primary
        assert "partial" in actions    # K-LHR / K-FRA
        # And big absorbers never pull their routes.
        k = scenario.deployments["K"]
        assert k.site_spec("AMS").policy is SitePolicy.ABSORB
        assert k.prefix.is_announced("AMS")


class TestSection31:
    """'event was at likely 35 Gb/s (50 Mq/s, an upper bound),
    resulting in 150 Gb/s reply traffic'"""

    def test_upper_bound_magnitudes(self, scenario):
        rssac = {
            L: scenario.rssac[L] for L in RSSAC_REPORTING_LETTERS
        }
        table = event_size_table(
            rssac, ATTACKED_LETTERS, "2015-11-30",
            len(ATTACKED_LETTERS),
        )
        upper_mqps = table.row_for("upper")[1]
        upper_gbps = table.row_for("upper")[2]
        assert 25 < upper_mqps < 60      # paper: ~51 Mq/s
        assert 15 < upper_gbps < 45      # paper: ~35 Gb/s


class TestSection32:
    """'letters saw minimal to severe loss (1% to 95%)'"""

    def test_loss_spans_minimal_to_severe(self, cleaned):
        worst = {
            L: worst_responsiveness(cleaned, L)
            for L in cleaned.letters
            if L != "A"
        }
        assert min(worst.values()) < 0.2    # severe (B)
        assert max(worst.values()) > 0.95   # minimal (L/M)


class TestSection33:
    """'loss was not uniform across each letter's anycast sites;
    overall loss does not predict user-observed loss at sites'"""

    def test_per_site_outcomes_diverge(self, cleaned, scenario):
        counts = vps_per_site(cleaned, "K")
        mask = scenario.event_mask()
        medians = np.median(counts, axis=0)
        stable = medians >= 20
        event_min = counts[mask][:, stable].min(axis=0)
        ratios = event_min / medians[stable]
        # Some sites nearly empty while others keep or gain VPs.
        assert ratios.min() < 0.3
        assert ratios.max() > 0.9


class TestSection34:
    """'some users flip to other sites; others stick to sometimes
    overloaded sites'"""

    def test_flips_and_stuck_users(self, cleaned, scenario):
        flips = count_flips(cleaned, "K")
        assert flips.values.sum() > 0
        from repro.core import vp_timelines

        census = behaviour_census(
            vp_timelines(cleaned, "K", ["LHR", "FRA"], event=EVENT_1)
        )
        assert census.get("shift+return", 0) > 0
        assert census.get("stuck", 0) > 0


class TestSection35:
    """'at some sites, some servers suffered disproportionately'"""

    def test_server_level_divergence(self, cleaned):
        fig = server_reachability(cleaned, "K", "FRA")
        during = np.array(
            [series.at_hour(8.0) for series in fig.series]
        )
        quiet = np.array(
            [series.at_hour(20.0) for series in fig.series]
        )
        # Quietly balanced; under stress one server takes it all.
        assert (quiet > 0).all()
        assert (during == 0).sum() == len(fig.series) - 1


class TestSection36:
    """'some collateral damage occurred to co-located services not
    directly under attack'"""

    def test_unattacked_services_suffer(self, cleaned, scenario):
        flagged = {c.site for c in collateral_sites(cleaned, "D")}
        assert flagged  # D was never attacked
        assert nl_event_minimum(scenario.nl, "nl-anycast-1") < 0.3
