"""Tests for the traffic-scrubbing model (§2.2 alternative defense)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.defense import (
    ScrubbingService,
    legit_served_absorbing,
    legit_served_with_scrubbing,
    scrub,
)


def _service(**kwargs):
    defaults = dict(capacity_qps=10e6, detection_rate=0.95,
                    false_positive_rate=0.02)
    defaults.update(kwargs)
    return ScrubbingService(**defaults)


class TestScrub:
    def test_filters_attack(self):
        outcome = scrub(_service(), attack_qps=5e6, legit_qps=50e3)
        assert outcome.forwarded_attack_qps == pytest.approx(0.05 * 5e6)
        assert outcome.forwarded_legit_qps == pytest.approx(0.98 * 50e3)
        assert outcome.overflow_loss == 0.0

    def test_overflow_drops_everything_proportionally(self):
        outcome = scrub(
            _service(capacity_qps=1e6), attack_qps=9e6, legit_qps=1e6
        )
        assert outcome.overflow_loss == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScrubbingService(capacity_qps=0)
        with pytest.raises(ValueError):
            _service(detection_rate=1.5)
        with pytest.raises(ValueError):
            scrub(_service(), attack_qps=-1, legit_qps=0)


class TestWhenScrubbingHelps:
    def test_helps_typical_workload_under_big_attack(self):
        # HTTP-like traffic: low false positives, good detection.
        service = _service(false_positive_rate=0.01)
        site = 300e3
        attack, legit = 5e6, 40e3
        scrubbed = legit_served_with_scrubbing(service, site, attack, legit)
        absorbed = legit_served_absorbing(site, attack, legit)
        assert scrubbed > 0.9
        assert absorbed < 0.2
        assert scrubbed > absorbed

    def test_atypical_workload_erodes_the_benefit(self):
        # The paper's reason roots skip scrubbing: the all-UDP DNS mix
        # classifies poorly, so legitimate queries get scrubbed away.
        site = 300e3
        attack, legit = 5e6, 40e3
        atypical = _service(detection_rate=0.5, false_positive_rate=0.4)
        scrubbed = legit_served_with_scrubbing(
            atypical, site, attack, legit
        )
        typical = legit_served_with_scrubbing(
            _service(), site, attack, legit
        )
        assert scrubbed < typical
        # Poor detection leaves the site overloaded anyway.
        assert scrubbed < 0.6

    def test_no_attack_scrubbing_only_costs(self):
        service = _service(false_positive_rate=0.05)
        site = 300e3
        scrubbed = legit_served_with_scrubbing(service, site, 0.0, 40e3)
        absorbed = legit_served_absorbing(site, 0.0, 40e3)
        assert absorbed == pytest.approx(1.0)
        assert scrubbed == pytest.approx(0.95)

    @given(
        attack=st.floats(min_value=0, max_value=2e7),
        legit=st.floats(min_value=1e3, max_value=1e5),
    )
    def test_served_fractions_bounded(self, attack, legit):
        service = _service()
        value = legit_served_with_scrubbing(service, 300e3, attack, legit)
        assert 0.0 <= value <= 1.0 + 1e-9
        absorbed = legit_served_absorbing(300e3, attack, legit)
        assert 0.0 <= absorbed <= 1.0 + 1e-9
