"""Tests for the §5 capacity-planning analysis."""

import pytest

from repro.defense import (
    aggregate_vs_placed,
    provisioning_plan,
    provisioning_table,
)


class TestProvisioningPlan:
    @pytest.fixture(scope="class")
    def plan(self, scenario):
        return provisioning_plan(
            scenario.deployments["K"], scenario.truth["K"]
        )

    def test_hot_sites_need_servers(self, plan):
        deficient = {p.site for p in plan.deficient_sites}
        # The attack's hot catchments need upgrades.
        assert "K-AMS" in deficient or "K-NRT" in deficient
        assert plan.total_extra_servers > 0

    def test_sorted_by_deficit(self, plan):
        deficits = [p.deficit_qps for p in plan.sites]
        assert deficits == sorted(deficits, reverse=True)

    def test_unattacked_letter_needs_nothing(self, scenario):
        plan = provisioning_plan(
            scenario.deployments["M"], scenario.truth["M"]
        )
        assert plan.total_extra_servers == 0

    def test_target_utilisation_scales_requirement(self, scenario):
        loose = provisioning_plan(
            scenario.deployments["K"], scenario.truth["K"],
            target_utilisation=1.0,
        )
        tight = provisioning_plan(
            scenario.deployments["K"], scenario.truth["K"],
            target_utilisation=0.5,
        )
        assert tight.total_extra_servers > loose.total_extra_servers

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            provisioning_plan(
                scenario.deployments["K"], scenario.truth["K"],
                target_utilisation=0.0,
            )

    def test_table_renders(self, plan):
        table = provisioning_table(plan)
        assert table.rows[-1][0] == "TOTAL"
        assert "Provisioning plan" in table.render()


class TestAggregateVsPlaced:
    def test_papers_point_in_numbers(self, scenario):
        # Section 5: aggregate capacity can be ample while individual
        # sites drown under unevenly placed attackers.
        aggregate, worst = aggregate_vs_placed(
            scenario.deployments["K"], scenario.truth["K"]
        )
        assert worst > 1.0       # some site was overloaded
        assert worst > aggregate # far worse than the average suggests

    def test_quiet_letter(self, scenario):
        aggregate, worst = aggregate_vs_placed(
            scenario.deployments["M"], scenario.truth["M"]
        )
        assert worst < 1.0
