"""Tests for the automated-defense controllers and evaluation."""

import pytest

from repro import ScenarioConfig, simulate
from repro.defense import (
    Action,
    ActionKind,
    GreedyShedController,
    LetterObservation,
    NullController,
    OracleController,
    SiteObservation,
    compare_controllers,
    evaluate_controller,
    served_fractions,
)


def _obs(code, capacity=100.0, accepted=50.0, dropped=0.0,
         announced=True, partial=False):
    return SiteObservation(
        code=code, capacity_qps=capacity, accepted_qps=accepted,
        dropped_qps=dropped, announced=announced, partial=partial,
    )


def _letter_obs(*sites):
    return LetterObservation(letter="K", bin_index=0, sites=sites)


class TestObservation:
    def test_derived_quantities(self):
        obs = _obs("AMS", capacity=100, accepted=80, dropped=120)
        assert obs.offered_qps == 200
        assert obs.utilisation == pytest.approx(2.0)
        assert obs.overloaded

    def test_validation(self):
        with pytest.raises(ValueError):
            _obs("AMS", capacity=0)
        with pytest.raises(ValueError):
            _obs("AMS", accepted=-1)

    def test_letter_aggregates(self):
        letter = _letter_obs(
            _obs("AMS", capacity=100, accepted=40),
            _obs("LHR", capacity=100, accepted=90, dropped=50),
            _obs("SAN", announced=False, accepted=0),
        )
        assert letter.total_accepted_qps == 130
        assert letter.announced_codes == ("AMS", "LHR")
        # Headroom: AMS 60, LHR 0 (over capacity).
        assert letter.headroom_qps == pytest.approx(60.0)
        assert letter.site("AMS").code == "AMS"
        with pytest.raises(KeyError):
            letter.site("ZZZ")


class TestNullController:
    def test_never_acts(self):
        controller = NullController()
        letter = _letter_obs(
            _obs("AMS", accepted=90, dropped=1000)
        )
        assert controller.decide(letter) == []


class TestGreedyShed:
    def test_withdraws_when_headroom_exists(self):
        controller = GreedyShedController(safety=1.0)
        letter = _letter_obs(
            _obs("LHR", capacity=100, accepted=100, dropped=200),
            _obs("AMS", capacity=1000, accepted=100),
        )
        actions = controller.decide(letter)
        assert Action(ActionKind.WITHDRAW, "LHR") in actions

    def test_keeps_last_site_announced(self):
        controller = GreedyShedController(min_announced=1)
        letter = _letter_obs(
            _obs("LHR", capacity=100, accepted=100, dropped=500),
        )
        assert controller.decide(letter) == []

    def test_no_action_without_headroom(self):
        controller = GreedyShedController(safety=1.5)
        letter = _letter_obs(
            _obs("LHR", capacity=100, accepted=100, dropped=500),
            _obs("AMS", capacity=120, accepted=110),
        )
        assert controller.decide(letter) == []

    def test_reannounce_after_calm(self):
        controller = GreedyShedController(calm_bins=2)
        withdrawn = _letter_obs(
            _obs("LHR", announced=False, accepted=0),
            _obs("AMS", capacity=1000, accepted=50),
        )
        assert controller.decide(withdrawn) == []  # 1 quiet bin
        actions = controller.decide(withdrawn)      # 2 quiet bins
        assert Action(ActionKind.ANNOUNCE, "LHR") in actions

    def test_no_reannounce_while_overloaded(self):
        controller = GreedyShedController(calm_bins=1)
        letter = _letter_obs(
            _obs("LHR", announced=False, accepted=0),
            _obs("AMS", capacity=100, accepted=90, dropped=100),
        )
        actions = controller.decide(letter)
        assert Action(ActionKind.ANNOUNCE, "LHR") not in actions

    def test_validation(self):
        with pytest.raises(ValueError):
            GreedyShedController(safety=0.5)
        with pytest.raises(ValueError):
            GreedyShedController(min_announced=0)


class TestOracle:
    def test_withdraws_hopeless_small_site(self):
        controller = OracleController()
        controller.set_truth({"LHR": 500.0, "AMS": 200.0})
        letter = _letter_obs(
            _obs("LHR", capacity=100, accepted=100, dropped=400),
            _obs("AMS", capacity=1000, accepted=200),
        )
        actions = controller.decide(letter)
        assert Action(ActionKind.WITHDRAW, "LHR") in actions

    def test_absorbs_when_withdrawal_cannot_help(self):
        controller = OracleController()
        controller.set_truth({"LHR": 5000.0, "AMS": 5000.0})
        letter = _letter_obs(
            _obs("LHR", capacity=100, accepted=100, dropped=4900),
            _obs("AMS", capacity=100, accepted=100, dropped=4900),
        )
        # Moving LHR's 5000 onto AMS serves no more traffic.
        assert controller.decide(letter) == []

    def test_reannounces_after_attack(self):
        controller = OracleController()
        controller.set_truth({"LHR": 10.0, "AMS": 10.0})
        letter = _letter_obs(
            _obs("LHR", announced=False, accepted=0),
            _obs("AMS", capacity=1000, accepted=10),
        )
        actions = controller.decide(letter)
        assert Action(ActionKind.ANNOUNCE, "LHR") in actions


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def base_config(self):
        return ScenarioConfig(
            seed=13, n_stubs=200, n_vps=200, letters=("K",),
            include_nl=False,
        )

    def test_served_fractions_bounds(self, base_config):
        result = simulate(base_config)
        overall, during, worst = served_fractions(result, "K")
        assert 0 <= worst <= during <= 1.0 + 1e-9
        assert 0 <= overall <= 1.0 + 1e-9
        assert during < overall  # events hurt

    def test_null_controller_takes_no_routing_action(self, base_config):
        outcome = evaluate_controller(
            base_config, "K", "absorb", NullController
        )
        assert outcome.routing_actions == 0

    def test_static_policies_act(self, base_config):
        outcome = evaluate_controller(base_config, "K", "static", None)
        assert outcome.routing_actions > 0

    def test_comparison_table(self, base_config):
        table = compare_controllers(
            base_config,
            "K",
            {
                "absorb": NullController,
                "oracle": OracleController,
            },
        )
        assert len(table.rows) == 2
        oracle = table.row_for("oracle")
        absorb = table.row_for("absorb")
        # The oracle never does worse than doing nothing overall.
        assert oracle[1] >= absorb[1] - 0.02
