"""Tests for per-letter CHAOS identity formatting and parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns import (
    LETTERS,
    Message,
    ServerIdentity,
    format_identity,
    identity_from_reply,
    make_chaos_query,
    make_chaos_reply,
    matches_any_letter,
    parse_identity,
)


class TestRoundTrip:
    @pytest.mark.parametrize("letter", LETTERS)
    def test_format_parse_roundtrip(self, letter):
        text = format_identity(letter, "FRA", 2)
        identity = parse_identity(letter, text)
        assert identity == ServerIdentity(letter=letter, site="FRA", server=2)

    @pytest.mark.parametrize("letter", LETTERS)
    def test_identity_unique_to_letter(self, letter):
        text = format_identity(letter, "AMS", 1)
        assert matches_any_letter(text) == letter

    @given(
        letter=st.sampled_from(LETTERS),
        site=st.sampled_from(["AMS", "LHR", "NRT", "IAD", "SYD"]),
        server=st.integers(min_value=1, max_value=40),
    )
    def test_roundtrip_property(self, letter, site, server):
        identity = parse_identity(letter, format_identity(letter, site, server))
        assert identity is not None
        assert identity.site == site
        assert identity.server == server


class TestLabels:
    def test_site_label_matches_paper_format(self):
        identity = ServerIdentity("K", "FRA", 2)
        assert identity.site_label == "K-FRA"

    def test_server_label_matches_paper_format(self):
        # Figures 12-13 use labels like K-FRA-S2.
        identity = ServerIdentity("K", "FRA", 2)
        assert identity.server_label == "K-FRA-S2"

    def test_rejects_unknown_letter(self):
        with pytest.raises(ValueError):
            ServerIdentity("Z", "FRA", 1)

    def test_rejects_zero_server(self):
        with pytest.raises(ValueError):
            ServerIdentity("K", "FRA", 0)


class TestParsing:
    def test_mismatched_reply_returns_none(self):
        # A hijacker's reply does not match K's pattern (section 2.4.1).
        assert parse_identity("K", "totally-bogus-reply") is None

    def test_wrong_letter_pattern_returns_none(self):
        text = format_identity("E", "AMS", 1)
        assert parse_identity("K", text) is None

    def test_unknown_letter_raises(self):
        with pytest.raises(ValueError):
            parse_identity("Z", "x")
        with pytest.raises(ValueError):
            format_identity("Z", "AMS", 1)

    def test_whitespace_tolerated(self):
        text = " " + format_identity("K", "AMS", 3) + " "
        assert parse_identity("K", text) is not None


class TestWireLevel:
    def test_query_reply_cycle(self):
        query = make_chaos_query(msg_id=55)
        reply = make_chaos_reply(query, "E", "AMS", 4)
        decoded = Message.decode(reply.encode())
        identity = identity_from_reply("E", decoded)
        assert identity is not None
        assert identity.site_label == "E-AMS"
        assert identity.server == 4

    def test_reply_with_wrong_pattern_yields_none(self):
        query = make_chaos_query(msg_id=55)
        reply = make_chaos_reply(query, "E", "AMS", 4)
        assert identity_from_reply("K", Message.decode(reply.encode())) is None

    def test_query_shape(self):
        query = make_chaos_query(msg_id=1)
        assert query.questions[0].qname == "hostname.bind."
