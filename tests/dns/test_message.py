"""Tests for DNS message encode/decode."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns import (
    Header,
    Message,
    MessageError,
    QClass,
    QType,
    Rcode,
    ResourceRecord,
    decode_txt_rdata,
    encode_txt_rdata,
    make_query,
    make_response,
    make_txt_response,
)


class TestHeader:
    def test_roundtrip(self):
        header = Header(
            msg_id=0x1234, qr=True, aa=True, rd=True, ra=True,
            rcode=Rcode.SERVFAIL, qdcount=1, ancount=2,
        )
        assert Header.decode(header.encode()) == header

    def test_rejects_bad_id(self):
        with pytest.raises(ValueError):
            Header(msg_id=70000)

    def test_rejects_short_wire(self):
        with pytest.raises(MessageError):
            Header.decode(b"\x00" * 5)


class TestTxtRdata:
    def test_roundtrip(self):
        strings = ["ns2.fra.k.ripe.net", "x"]
        assert decode_txt_rdata(encode_txt_rdata(strings)) == strings

    def test_empty(self):
        assert decode_txt_rdata(encode_txt_rdata([])) == []

    def test_rejects_oversized_string(self):
        with pytest.raises(ValueError):
            encode_txt_rdata(["a" * 256])

    def test_rejects_truncated(self):
        with pytest.raises(MessageError):
            decode_txt_rdata(b"\x05ab")

    @given(
        strings=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=255,
            ),
            max_size=4,
        )
    )
    def test_roundtrip_property(self, strings):
        assert decode_txt_rdata(encode_txt_rdata(strings)) == strings


class TestMessage:
    def test_query_roundtrip(self):
        query = make_query(99, "www.336901.com.", QType.A)
        decoded = Message.decode(query.encode())
        assert decoded.header.msg_id == 99
        assert not decoded.header.qr
        assert decoded.questions[0].qname == "www.336901.com."
        assert decoded.questions[0].qtype is QType.A
        assert decoded.questions[0].qclass is QClass.IN

    def test_response_echoes_query(self):
        query = make_query(7, "example.com.")
        response = make_response(query, rcode=Rcode.NXDOMAIN)
        decoded = Message.decode(response.encode())
        assert decoded.header.qr
        assert decoded.header.msg_id == 7
        assert decoded.header.rcode is Rcode.NXDOMAIN
        assert decoded.questions == query.questions

    def test_txt_response_roundtrip(self):
        query = make_query(1, "hostname.bind.", QType.TXT, QClass.CH)
        response = make_txt_response(query, ["b1-lax"])
        decoded = Message.decode(response.encode())
        assert decoded.answers[0].txt_strings() == ["b1-lax"]
        assert decoded.answers[0].rclass is QClass.CH

    def test_txt_response_requires_question(self):
        empty = Message(header=Header(msg_id=1))
        with pytest.raises(ValueError):
            make_txt_response(empty, ["x"])

    def test_txt_strings_rejects_non_txt(self):
        record = ResourceRecord("a.", QType.A, QClass.IN, 0, b"\x01\x02\x03\x04")
        with pytest.raises(ValueError):
            record.txt_strings()

    def test_wire_size_of_event_query_is_84_bytes(self):
        # Section 3.1 confirms full packets of 84 bytes for the Nov 30
        # query name *including* IP/UDP headers (28 bytes): the DNS
        # payload itself must be 56 bytes... The paper adds 40 bytes for
        # IP+UDP+DNS overhead to the reported *question* size.  Here we
        # simply check our encoder's payload size is plausible (name +
        # 4 bytes question + 12 bytes header).
        query = make_query(0, "www.336901.com.")
        assert query.wire_size == 12 + len(b"\x03www\x06336901\x03com\x00") + 4

    def test_truncated_message_rejected(self):
        query = make_query(3, "example.com.")
        wire = query.encode()
        with pytest.raises(MessageError):
            Message.decode(wire[:-3])

    def test_rr_roundtrip(self):
        record = ResourceRecord(
            name="k.root-servers.net.",
            rtype=QType.A,
            rclass=QClass.IN,
            ttl=3600,
            rdata=bytes([193, 0, 14, 129]),
        )
        wire = record.encode()
        decoded, offset = ResourceRecord.decode(wire, 0)
        assert decoded == record
        assert offset == len(wire)

    def test_rr_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.", QType.A, QClass.IN, -1, b"")

    @given(
        msg_id=st.integers(min_value=0, max_value=0xFFFF),
        qname=st.sampled_from(
            ["www.336901.com.", "www.916yy.com.", "hostname.bind.", "."]
        ),
        qtype=st.sampled_from([QType.A, QType.TXT, QType.NS]),
        rcode=st.sampled_from(list(Rcode)),
    )
    def test_query_response_roundtrip_property(self, msg_id, qname, qtype, rcode):
        query = make_query(msg_id, qname, qtype)
        response = make_response(query, rcode=rcode)
        decoded = Message.decode(response.encode())
        assert decoded == response
