"""Tests for response rate limiting."""

import pytest

from repro.dns import ResponseRateLimiter, RrlAction, suppression_fraction


class TestLimiter:
    def test_distinct_tuples_never_limited(self):
        rrl = ResponseRateLimiter(responses_per_second=1, window_seconds=1)
        for i in range(100):
            action = rrl.account(f"198.51.100.{i}", "www.336901.com.", 0.0)
            assert action is RrlAction.SEND

    def test_repeated_tuple_limited(self):
        rrl = ResponseRateLimiter(
            responses_per_second=2, window_seconds=1, slip=0
        )
        actions = [
            rrl.account("198.51.100.1", "www.336901.com.", 0.0)
            for _ in range(10)
        ]
        assert actions[:2] == [RrlAction.SEND, RrlAction.SEND]
        assert all(a is RrlAction.DROP for a in actions[2:])

    def test_window_slides(self):
        rrl = ResponseRateLimiter(
            responses_per_second=1, window_seconds=1, slip=0
        )
        assert rrl.account("s", "q", 0.0) is RrlAction.SEND
        assert rrl.account("s", "q", 0.5) is RrlAction.DROP
        # After the window passes, the budget refreshes.
        assert rrl.account("s", "q", 1.5) is RrlAction.SEND

    def test_slip_sends_every_nth(self):
        rrl = ResponseRateLimiter(
            responses_per_second=1, window_seconds=100, slip=2
        )
        rrl.account("s", "q", 0.0)  # consumes the budget... (rate*window=100)
        # Use a tiny budget instead:
        rrl = ResponseRateLimiter(
            responses_per_second=0.01, window_seconds=100, slip=2
        )
        assert rrl.account("s", "q", 0.0) is RrlAction.SEND
        actions = [rrl.account("s", "q", 0.0) for _ in range(4)]
        assert actions == [
            RrlAction.DROP, RrlAction.SLIP, RrlAction.DROP, RrlAction.SLIP,
        ]

    def test_suppression_ratio_counts(self):
        rrl = ResponseRateLimiter(
            responses_per_second=0.01, window_seconds=100, slip=0
        )
        for _ in range(10):
            rrl.account("s", "q", 0.0)
        assert rrl.suppression_ratio == pytest.approx(0.9)

    def test_ratio_empty_is_zero(self):
        assert ResponseRateLimiter().suppression_ratio == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResponseRateLimiter(responses_per_second=0)
        with pytest.raises(ValueError):
            ResponseRateLimiter(window_seconds=0)
        with pytest.raises(ValueError):
            ResponseRateLimiter(slip=-1)


class TestAnalyticModel:
    def test_event_mix_suppresses_about_60_percent(self):
        # Section 2.3: Verisign reported RRL dropped ~60 % of responses.
        # Top 200 sources sent 68 % of queries with fixed names.
        assert suppression_fraction(0.68, 0.9) == pytest.approx(0.612)

    def test_no_duplicates_no_suppression(self):
        assert suppression_fraction(0.0) == 0.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            suppression_fraction(1.5)
        with pytest.raises(ValueError):
            suppression_fraction(0.5, rrl_effectiveness=-0.1)
