"""Tests for DNS name encoding, decoding, and compression handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns import NameError_, decode_name, encode_name, normalize_name
from repro.dns.name import split_labels

_label = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=20,
)
_names = st.lists(_label, min_size=0, max_size=6).map(
    lambda labels: ".".join(labels) + "." if labels else "."
)


class TestEncode:
    def test_root_name(self):
        assert encode_name(".") == b"\x00"
        assert encode_name("") == b"\x00"

    def test_simple_name(self):
        assert encode_name("www.example.com.") == (
            b"\x03www\x07example\x03com\x00"
        )

    def test_trailing_dot_optional(self):
        assert encode_name("example.com") == encode_name("example.com.")

    def test_rejects_empty_label(self):
        with pytest.raises(NameError_):
            encode_name("a..b.")

    def test_rejects_oversized_label(self):
        with pytest.raises(NameError_):
            encode_name("a" * 64 + ".com.")

    def test_rejects_oversized_name(self):
        with pytest.raises(NameError_):
            encode_name(".".join(["a" * 60] * 5) + ".")


class TestDecode:
    def test_simple_roundtrip(self):
        wire = encode_name("www.336901.com.")
        name, offset = decode_name(wire, 0)
        assert name == "www.336901.com."
        assert offset == len(wire)

    def test_compression_pointer(self):
        # "example.com." at 0, then "www" + pointer to offset 0.
        base = encode_name("example.com.")
        compressed = base + b"\x03www" + bytes([0xC0, 0x00])
        name, offset = decode_name(compressed, len(base))
        assert name == "www.example.com."
        assert offset == len(compressed)

    def test_pointer_loop_rejected(self):
        # Offset 0 points at itself.
        data = bytes([0xC0, 0x00])
        with pytest.raises(NameError_):
            decode_name(data, 0)

    def test_forward_pointer_rejected(self):
        data = bytes([0xC0, 0x05, 0, 0, 0, 0])
        with pytest.raises(NameError_):
            decode_name(data, 0)

    def test_truncated_label_rejected(self):
        with pytest.raises(NameError_):
            decode_name(b"\x05abc", 0)

    def test_truncated_pointer_rejected(self):
        with pytest.raises(NameError_):
            decode_name(b"\xc0", 0)

    def test_missing_terminator_rejected(self):
        with pytest.raises(NameError_):
            decode_name(b"\x03www", 0)

    def test_reserved_label_type_rejected(self):
        with pytest.raises(NameError_):
            decode_name(bytes([0x40, 0x00]), 0)

    @given(name=_names)
    def test_roundtrip_property(self, name):
        wire = encode_name(name)
        decoded, offset = decode_name(wire, 0)
        assert decoded == name
        assert offset == len(wire)


class TestNormalize:
    def test_lowercases(self):
        assert normalize_name("WWW.Example.COM") == "www.example.com."

    def test_root(self):
        assert normalize_name(".") == "."

    def test_split_labels_root(self):
        assert split_labels(".") == []
        assert split_labels("") == []
