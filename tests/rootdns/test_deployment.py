"""Integration tests: letters deployed on the topology, policy loop."""

import numpy as np
import pytest

from repro.netsim import TopologyConfig, build_topology
from repro.rootdns import (
    FacilityRegistry,
    LETTERS_SPEC,
    LetterDeployment,
    build_deployments,
)


@pytest.fixture(scope="module")
def topo():
    return build_topology(
        TopologyConfig(n_stubs=400), np.random.default_rng(5)
    )


@pytest.fixture(scope="module")
def deployments(topo):
    return build_deployments(topo, FacilityRegistry())


class TestBuild:
    def test_all_letters_deployed(self, deployments):
        assert sorted(deployments) == sorted(LETTERS_SPEC)

    def test_every_stub_reaches_every_letter(self, topo, deployments):
        for letter, dep in deployments.items():
            table = dep.routing()
            unreached = [
                a for a in topo.stub_asns if table.site_of(a) is None
            ]
            assert not unreached, f"{letter}: {len(unreached)} stubs dark"

    def test_host_as_labels_are_unique(self, topo, deployments):
        labels = list(topo.site_host_asns)
        assert len(labels) == len(set(labels))

    def test_standby_site_not_in_initial_routing(self, deployments):
        h = deployments["H"]
        assert not h.prefix.is_announced("SAN")
        assert h.prefix.is_announced("BWI")
        assert set(h.routing().catchments()) == {"BWI"}

    def test_facilities_registered(self, topo):
        registry = FacilityRegistry()
        build_deployments(
            build_topology(TopologyConfig(n_stubs=50),
                           np.random.default_rng(1)),
            registry,
        )
        assert "FRA-DC" in registry.facilities
        fra_letters = {m.label[0] for m in registry.members("FRA-DC")}
        assert len(fra_letters) >= 5


class TestPolicyLoop:
    def _fresh(self, topo, letter):
        # Deployments mutate state; build a private copy on a private
        # topology for policy-machine tests.
        private_topo = build_topology(
            TopologyConfig(n_stubs=200), np.random.default_rng(9)
        )
        return LetterDeployment(LETTERS_SPEC[letter], private_topo)

    def test_withdraw_policy_fires_on_overload(self, topo):
        e = self._fresh(topo, "E")
        assert e.prefix.is_announced("AMS")
        changed = e.apply_policies(
            {"AMS": 10.0}, letter_under_attack=True, timestamp=100.0
        )
        assert changed
        assert not e.prefix.is_announced("AMS")
        assert e.state("AMS").withdrawals == 1

    def test_absorber_never_withdraws(self, topo):
        k = self._fresh(topo, "K")
        k.apply_policies(
            {"AMS": 50.0}, letter_under_attack=True, timestamp=100.0
        )
        assert k.prefix.is_announced("AMS")

    def test_partial_withdraw_blocks_providers_only(self, topo):
        k = self._fresh(topo, "K")
        k.apply_policies(
            {"LHR": 5.0}, letter_under_attack=True, timestamp=100.0
        )
        assert k.prefix.is_announced("LHR")
        assert k.state("LHR").partial
        blocked = k.prefix.blocked_neighbors("LHR")
        providers = set(k.topology.graph.providers(k.host_asns["LHR"]))
        assert blocked == frozenset(providers)
        # The IXP peers remain reachable ("stuck" group).
        assert k.topology.graph.peers(k.host_asns["LHR"])

    def test_recovery_after_calm(self, topo):
        e = self._fresh(topo, "E")
        e.apply_policies({"AMS": 10.0}, True, 100.0)
        assert not e.prefix.is_announced("AMS")
        for i in range(10):
            e.apply_policies({}, letter_under_attack=False,
                             timestamp=200.0 + i)
        assert e.prefix.is_announced("AMS")

    def test_no_recovery_while_attack_continues(self, topo):
        e = self._fresh(topo, "E")
        e.apply_policies({"AMS": 10.0}, True, 100.0)
        for i in range(20):
            e.apply_policies({}, letter_under_attack=True,
                             timestamp=200.0 + i)
        assert not e.prefix.is_announced("AMS")

    def test_reannounce_limit_keeps_site_down_after_second_event(self, topo):
        # The five E-Root sites that "shut down" after Dec 1 (Fig. 6a).
        e = self._fresh(topo, "E")
        e.apply_policies({"AMS": 10.0}, True, 100.0)  # event 1 withdraw
        for i in range(10):  # recovery between events
            e.apply_policies({}, False, 200.0 + i)
        assert e.prefix.is_announced("AMS")
        e.apply_policies({"AMS": 10.0}, True, 300.0)  # event 2 withdraw
        for i in range(50):
            e.apply_policies({}, False, 400.0 + i)
        assert not e.prefix.is_announced("AMS")

    def test_partial_withdraw_restores_after_calm(self, topo):
        k = self._fresh(topo, "K")
        k.apply_policies({"FRA": 5.0}, True, 100.0)
        assert k.state("FRA").partial
        shed_before = k.state("FRA").shed_server
        for i in range(10):
            k.apply_policies({}, False, 200.0 + i)
        assert not k.state("FRA").partial
        assert k.prefix.blocked_neighbors("FRA") == frozenset()
        # The shed server rotates for the next event (Fig. 12).
        assert k.state("FRA").shed_server != shed_before

    def test_standby_activates_and_deactivates(self, topo):
        h = self._fresh(topo, "H")
        h.apply_policies({"BWI": 12.0}, True, 100.0)
        assert not h.prefix.is_announced("BWI")
        assert h.prefix.is_announced("SAN")
        assert set(h.routing().catchments()) == {"SAN"}
        # Calm: primary returns, standby goes dark again.
        for i in range(10):
            h.apply_policies({}, False, 200.0 + i)
        assert h.prefix.is_announced("BWI")
        assert not h.prefix.is_announced("SAN")

    def test_policy_log_records_actions(self, topo):
        h = self._fresh(topo, "H")
        h.apply_policies({"BWI": 12.0}, True, 100.0)
        actions = [(e.site, e.action) for e in h.policy_log]
        assert ("BWI", "withdraw") in actions
        assert ("SAN", "announce") in actions

    def test_unknown_site_raises(self, topo):
        k = self._fresh(topo, "K")
        with pytest.raises(KeyError):
            k.state("ZZZ")
        with pytest.raises(KeyError):
            k.site_spec("ZZZ")
