"""Tests for the root letter registry against the paper's Table 2."""

import pytest

from repro.dns import LETTERS
from repro.rootdns import (
    ATTACKED_LETTERS,
    LETTERS_SPEC,
    RSSAC_REPORTING_LETTERS,
    SitePolicy,
    facility_for,
    letter_spec,
)
from repro.netsim import Scope

# Table 2's "observed" site counts, which our deployments instantiate.
OBSERVED_SITES = {
    "A": 5, "B": 1, "C": 8, "D": 65, "E": 74, "F": 52, "G": 6,
    "H": 2, "I": 48, "J": 69, "K": 32, "L": 113, "M": 6,
}


class TestRegistryShape:
    def test_thirteen_letters(self):
        assert sorted(LETTERS_SPEC) == list(LETTERS)

    @pytest.mark.parametrize("letter,count", sorted(OBSERVED_SITES.items()))
    def test_observed_site_counts_match_table2(self, letter, count):
        assert LETTERS_SPEC[letter].n_sites == count

    def test_twelve_operators_verisign_runs_two(self):
        operators = [spec.operator for spec in LETTERS_SPEC.values()]
        assert len(set(operators)) == 12
        assert operators.count("Verisign") == 2
        assert LETTERS_SPEC["A"].operator == "Verisign"
        assert LETTERS_SPEC["J"].operator == "Verisign"

    def test_d_l_m_not_attacked(self):
        # Section 2.3 (Verisign report): D, L and M were not attacked.
        assert set("DLM").isdisjoint(ATTACKED_LETTERS)
        assert len(ATTACKED_LETTERS) == 10

    def test_rssac_reporters_are_a_h_j_k_l(self):
        # Section 2.4.2: only five letters provided RSSAC-002 data.
        assert sorted(RSSAC_REPORTING_LETTERS) == ["A", "H", "J", "K", "L"]

    def test_a_root_probed_every_30_minutes(self):
        # Section 2.4.1: A-Root was probed only every 30 minutes.
        assert LETTERS_SPEC["A"].probe_interval_s == 1800
        assert LETTERS_SPEC["K"].probe_interval_s == 240

    def test_measurement_ids_match_paper_reference(self):
        assert LETTERS_SPEC["K"].measurement_id == 10301
        assert LETTERS_SPEC["F"].measurement_id == 10304

    def test_unknown_letter_raises(self):
        with pytest.raises(KeyError):
            letter_spec("Z")


class TestArchitectures:
    def test_b_root_is_single_site(self):
        spec = LETTERS_SPEC["B"]
        assert spec.n_sites == 1
        assert spec.reported_note == "(unicast)"

    def test_h_root_primary_backup(self):
        spec = LETTERS_SPEC["H"]
        codes = {s.code for s in spec.sites}
        assert codes == {"BWI", "SAN"}
        assert spec.site("BWI").initially_announced
        assert not spec.site("SAN").initially_announced
        assert spec.site("BWI").policy is SitePolicy.WITHDRAW

    def test_k_root_documented_behaviours(self):
        spec = LETTERS_SPEC["K"]
        assert spec.site("LHR").policy is SitePolicy.PARTIAL_WITHDRAW
        assert spec.site("FRA").policy is SitePolicy.PARTIAL_WITHDRAW
        assert spec.site("AMS").policy is SitePolicy.ABSORB
        # K-AMS is the big absorber.
        assert spec.site("AMS").capacity_qps > spec.site("LHR").capacity_qps

    def test_e_root_withdrawers_have_limited_recovery(self):
        spec = LETTERS_SPEC["E"]
        for code in ("AMS", "CDG", "WAW", "SYD", "NLV"):
            site = spec.site(code)
            assert site.policy is SitePolicy.WITHDRAW
            assert site.reannounce_limit == 1
        assert spec.site("FRA").policy is SitePolicy.ABSORB

    def test_d_root_has_shared_facility_sites(self):
        # Section 3.6: D-FRA and D-SYD suffered collateral damage.
        spec = LETTERS_SPEC["D"]
        assert spec.site("FRA").facility == "FRA-DC"
        assert spec.site("SYD").facility == "SYD-DC"

    def test_every_letter_has_unique_sites(self):
        for spec in LETTERS_SPEC.values():
            codes = [s.code for s in spec.sites]
            assert len(set(codes)) == len(codes)

    def test_registry_is_deterministic_across_builds(self):
        from repro.rootdns.letters import _build_letters

        rebuilt = _build_letters()
        for letter, spec in LETTERS_SPEC.items():
            assert [s.code for s in rebuilt[letter].sites] == [
                s.code for s in spec.sites
            ]


class TestFacilities:
    def test_shared_metros(self):
        assert facility_for("FRA") == "FRA-DC"
        assert facility_for("SYD") == "SYD-DC"
        assert facility_for("MKC") is None

    def test_frankfurt_hosts_many_letters(self):
        # Section 3.6: seven letters hosted in Frankfurt.
        with_fra = [
            spec.letter
            for spec in LETTERS_SPEC.values()
            if any(s.code == "FRA" for s in spec.sites)
        ]
        assert len(with_fra) >= 5
        assert "D" in with_fra
        assert "K" in with_fra


class TestCapacityScaling:
    def test_attacked_small_letters_are_under_provisioned(self):
        # 5 Mq/s of event traffic must overwhelm B and H outright.
        for letter in ("B", "H"):
            assert LETTERS_SPEC[letter].capacity_qps < 1e6

    def test_large_letters_ride_out_the_attack(self):
        for letter in ("J", "L"):
            assert LETTERS_SPEC[letter].capacity_qps > 10e6

    def test_scope_split_exists_for_mixed_letters(self):
        spec = LETTERS_SPEC["K"]
        scopes = {s.scope for s in spec.sites}
        assert scopes == {Scope.GLOBAL, Scope.LOCAL}
