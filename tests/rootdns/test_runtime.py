"""Tests for the wire-level root name server."""

import pytest

from repro.dns import (
    Message,
    QClass,
    QType,
    Rcode,
    ResponseRateLimiter,
    identity_from_reply,
    make_chaos_query,
    make_query,
)
from repro.rootdns.runtime import (
    DELEGATION_TTL,
    RootNameServer,
    RootZone,
)


@pytest.fixture
def server():
    return RootNameServer("K", "FRA", 2)


class TestRootZone:
    def test_delegation_lookup(self):
        zone = RootZone()
        assert zone.delegation_for("www.336901.com.") == "com"
        assert zone.delegation_for("example.nl.") == "nl"
        assert zone.delegation_for("www.example.zz.") is None
        assert zone.delegation_for(".") is None

    def test_referral_records(self):
        zone = RootZone()
        records = zone.referral_records("com")
        assert len(records) == 4
        assert all(r.rtype is QType.NS for r in records)
        assert all(r.ttl == DELEGATION_TTL for r in records)
        with pytest.raises(KeyError):
            zone.referral_records("zz")

    def test_validation(self):
        with pytest.raises(ValueError):
            RootZone(tlds=frozenset({"a.b"}))


class TestChaosHandling:
    def test_hostname_bind(self, server):
        query = make_chaos_query(7)
        response = server.handle(query, "192.0.2.1")
        identity = identity_from_reply("K", response)
        assert identity is not None
        assert identity.site_label == "K-FRA"
        assert identity.server == 2

    def test_id_server(self, server):
        query = make_query(7, "id.server.", QType.TXT, QClass.CH)
        response = server.handle(query, "192.0.2.1")
        assert identity_from_reply("K", response) is not None

    def test_other_chaos_refused(self, server):
        query = make_query(7, "version.bind.", QType.TXT, QClass.CH)
        response = server.handle(query, "192.0.2.1")
        assert response.header.rcode is Rcode.REFUSED


class TestInHandling:
    def test_referral_for_event_qname(self, server):
        # The Nov 30 event name draws a .com referral -- the response
        # shape behind Table 3's ~490-byte responses.
        query = make_query(1, "www.336901.com.")
        response = server.handle(query, "192.0.2.1")
        assert response.header.rcode is Rcode.NOERROR
        assert len(response.authorities) == 4
        assert not response.header.aa  # referrals are not authoritative
        assert response.wire_size > 100

    def test_nxdomain_for_unknown_tld(self, server):
        query = make_query(1, "example.doesnotexist.")
        response = server.handle(query, "192.0.2.1")
        assert response.header.rcode is Rcode.NXDOMAIN
        assert response.header.aa
        assert response.authorities[0].rtype is QType.SOA

    def test_apex_query(self, server):
        query = make_query(1, ".", QType.SOA)
        response = server.handle(query, "192.0.2.1")
        assert response.header.rcode is Rcode.NOERROR
        assert response.authorities[0].rtype is QType.SOA

    def test_non_in_non_ch_notimp(self, server):
        query = make_query(1, "example.com.", qclass=QClass.ANY)
        response = server.handle(query, "192.0.2.1")
        assert response.header.rcode is Rcode.NOTIMP


class TestWireLevel:
    def test_wire_roundtrip(self, server):
        wire = make_query(9, "www.916yy.com.").encode()
        response_wire = server.handle_wire(wire, "192.0.2.1")
        response = Message.decode(response_wire)
        assert response.header.msg_id == 9
        assert response.header.qr

    def test_garbage_ignored(self, server):
        assert server.handle_wire(b"\x00\x01", "192.0.2.1") is None

    def test_responses_to_responses_ignored(self, server):
        query = make_query(1, "example.com.")
        response = server.handle(query, "192.0.2.1")
        assert server.handle(response, "192.0.2.1") is None

    def test_empty_question_formerr(self, server):
        from repro.dns import Header

        empty = Message(header=Header(msg_id=1))
        response = server.handle(empty, "192.0.2.1")
        assert response.header.rcode is Rcode.FORMERR


class TestRrlIntegration:
    def test_repeated_source_rate_limited(self):
        rrl = ResponseRateLimiter(
            responses_per_second=0.02, window_seconds=50, slip=0
        )
        server = RootNameServer("K", "FRA", 1, rrl=rrl)
        query = make_query(1, "www.336901.com.")
        # First response passes; the flood is dropped.
        assert server.handle(query, "198.51.100.1", now=0.0) is not None
        drops = sum(
            1
            for _ in range(20)
            if server.handle(query, "198.51.100.1", now=0.0) is None
        )
        assert drops == 20
        assert server.responses_dropped == 20

    def test_slip_sends_truncated(self):
        rrl = ResponseRateLimiter(
            responses_per_second=0.02, window_seconds=50, slip=1
        )
        server = RootNameServer("K", "FRA", 1, rrl=rrl)
        query = make_query(1, "www.336901.com.")
        server.handle(query, "198.51.100.1", now=0.0)
        slipped = server.handle(query, "198.51.100.1", now=0.0)
        assert slipped is not None
        assert slipped.header.tc
        assert not slipped.answers

    def test_distinct_sources_unaffected(self):
        # Spoofed random sources evade RRL -- why it cannot stop the
        # query flood, only shrink the response traffic (section 2.3).
        rrl = ResponseRateLimiter(
            responses_per_second=0.02, window_seconds=50, slip=0
        )
        server = RootNameServer("K", "FRA", 1, rrl=rrl)
        query = make_query(1, "www.336901.com.")
        answered = sum(
            1
            for i in range(50)
            if server.handle(query, f"198.51.{i}.1", now=0.0) is not None
        )
        assert answered == 50

    def test_counters(self, server):
        query = make_query(1, "example.com.")
        server.handle(query, "192.0.2.1")
        assert server.queries_handled == 1
        assert server.responses_sent == 1
