"""Tests for site specs, site state, and per-server behaviour."""

import numpy as np
import pytest

from repro.rootdns import (
    ServerBehavior,
    SitePolicy,
    SiteSpec,
    SiteState,
    hot_server_index,
    observed_servers,
    rotate_shed_server,
    server_delay_multipliers,
    server_loss_multipliers,
)


class TestSiteSpec:
    def test_capacity_is_servers_times_rate(self):
        spec = SiteSpec(code="AMS", n_servers=10, per_server_qps=100_000)
        assert spec.capacity_qps == 1_000_000

    def test_label(self):
        assert SiteSpec(code="FRA").label("K") == "K-FRA"

    def test_location_from_airport_table(self):
        spec = SiteSpec(code="AMS")
        assert 50 < spec.location.lat < 55

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteSpec(code="AMST")
        with pytest.raises(ValueError):
            SiteSpec(code="AMS", n_servers=0)
        with pytest.raises(ValueError):
            SiteSpec(code="AMS", per_server_qps=0)
        with pytest.raises(ValueError):
            SiteSpec(code="AMS", withdraw_threshold=0.9)
        with pytest.raises(ValueError):
            SiteSpec(code="AMS", reannounce_limit=-1)
        with pytest.raises(ValueError):
            SiteSpec(code="AMS", n_transit_providers=0)


class TestSiteState:
    def test_initial_respects_standby(self):
        standby = SiteSpec(code="SAN", initially_announced=False)
        assert not SiteState.initial(standby).announced

    def test_unlimited_recovery(self):
        state = SiteState.initial(SiteSpec(code="AMS"))
        state.withdrawals = 99
        assert state.may_reannounce()

    def test_limited_recovery_budget(self):
        spec = SiteSpec(
            code="AMS", policy=SitePolicy.WITHDRAW, reannounce_limit=1
        )
        state = SiteState.initial(spec)
        state.withdrawals = 1
        assert state.may_reannounce()
        state.withdrawals = 2
        assert not state.may_reannounce()


class TestObservedServers:
    def test_balanced_by_hash(self):
        hashes = np.arange(12)
        servers = observed_servers(
            ServerBehavior.NORMAL, 3, hashes, overloaded=False, shed_server=1
        )
        assert set(servers) == {1, 2, 3}
        assert np.bincount(servers)[1:].tolist() == [4, 4, 4]

    def test_shed_to_one_collapses_under_load(self):
        # K-FRA in Fig. 12: all replies from one server per event.
        hashes = np.arange(12)
        servers = observed_servers(
            ServerBehavior.SHED_TO_ONE, 3, hashes, overloaded=True,
            shed_server=2,
        )
        assert set(servers) == {2}

    def test_shed_to_one_balanced_when_calm(self):
        hashes = np.arange(12)
        servers = observed_servers(
            ServerBehavior.SHED_TO_ONE, 3, hashes, overloaded=False,
            shed_server=2,
        )
        assert set(servers) == {1, 2, 3}

    def test_bad_shed_server_rejected(self):
        with pytest.raises(ValueError):
            observed_servers(
                ServerBehavior.SHED_TO_ONE, 3, np.arange(3),
                overloaded=True, shed_server=4,
            )

    def test_stable_assignment(self):
        hashes = np.array([5, 17, 101])
        a = observed_servers(
            ServerBehavior.NORMAL, 4, hashes, overloaded=False, shed_server=1
        )
        b = observed_servers(
            ServerBehavior.NORMAL, 4, hashes, overloaded=True, shed_server=1
        )
        assert (a == b).all()


class TestMultipliers:
    def test_uniform_when_calm(self):
        m = server_loss_multipliers(ServerBehavior.SKEWED, "NRT", 3, False)
        assert (m == 1.0).all()

    def test_skewed_has_one_hot_server(self):
        # K-NRT in Fig. 12-13: all degrade, one worse (K-NRT-S2).
        m = server_loss_multipliers(ServerBehavior.SKEWED, "NRT", 3, True)
        hot = hot_server_index("NRT", 3)
        assert hot == 1  # server 2, matching the paper
        assert m[hot] > 1.0
        assert (np.delete(m, hot) < 1.0).all()

    def test_skewed_delay_follows_load(self):
        m = server_delay_multipliers(ServerBehavior.SKEWED, "NRT", 3, True)
        hot = hot_server_index("NRT", 3)
        assert m[hot] == m.max()

    def test_shed_survivor_keeps_low_latency(self):
        # K-FRA's surviving server shows stable RTT (Fig. 13 top).
        m = server_delay_multipliers(
            ServerBehavior.SHED_TO_ONE, "FRA", 3, True
        )
        assert (m < 1.0).all()

    def test_normal_behavior_is_uniform_even_overloaded(self):
        for fn in (server_loss_multipliers, server_delay_multipliers):
            assert (fn(ServerBehavior.NORMAL, "AMS", 5, True) == 1.0).all()


class TestRotation:
    def test_rotates_through_all_servers(self):
        seen = []
        current = 1
        for _ in range(3):
            current = rotate_shed_server(current, 3)
            seen.append(current)
        assert seen == [2, 3, 1]

    def test_single_server_site(self):
        assert rotate_shed_server(1, 1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            rotate_shed_server(1, 0)
        with pytest.raises(ValueError):
            hot_server_index("NRT", 0)
        with pytest.raises(ValueError):
            observed_servers(
                ServerBehavior.NORMAL, 0, np.arange(3), False, 1
            )
