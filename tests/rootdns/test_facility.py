"""Tests for the shared-facility (collateral damage) model."""

import pytest

from repro.rootdns import FacilityRegistry


@pytest.fixture
def registry():
    reg = FacilityRegistry()
    reg.register("FRA-DC", "K-FRA", capacity_qps=300_000, coupling=0.15)
    reg.register("FRA-DC", "E-FRA", capacity_qps=800_000, coupling=0.15)
    reg.register("FRA-DC", "D-FRA", capacity_qps=400_000, coupling=0.15)
    reg.register("FRA-DC", "nl-anycast-1", capacity_qps=100_000, coupling=1.0)
    return reg


class TestRegistration:
    def test_membership(self, registry):
        assert registry.facility_of("K-FRA") == "FRA-DC"
        assert registry.facility_of("X-LAX") is None
        labels = {m.label for m in registry.members("FRA-DC")}
        assert "nl-anycast-1" in labels

    def test_duplicate_label_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register("AMS-DC", "K-FRA", 1.0, 0.1)

    def test_unknown_facility_raises(self, registry):
        with pytest.raises(KeyError):
            registry.members("ZZZ-DC")

    def test_capacity_is_sum_of_members(self, registry):
        assert registry.capacity("FRA-DC") == pytest.approx(1_600_000)

    def test_member_validation(self):
        reg = FacilityRegistry()
        with pytest.raises(ValueError):
            reg.register("X", "a", capacity_qps=0, coupling=0.1)
        with pytest.raises(ValueError):
            reg.register("X", "a", capacity_qps=1, coupling=1.5)


class TestSpillover:
    def test_no_spill_below_capacity(self, registry):
        extra = registry.spillover({"K-FRA": 100_000, "E-FRA": 100_000})
        assert extra == {}

    def test_spill_hits_unattacked_colocated_service(self, registry):
        # The section-3.6 signature: K and E overloaded in Frankfurt,
        # unattacked D-FRA and the .nl node suffer too.
        offered = {"K-FRA": 3_000_000, "E-FRA": 3_000_000, "D-FRA": 50_000}
        extra = registry.spillover(offered)
        assert "D-FRA" in extra
        # D couples weakly: visible but small loss (paper: >= 10 % dip).
        assert 0.05 < extra["D-FRA"] < 0.2

    def test_fully_coupled_member_takes_full_overflow(self, registry):
        offered = {"K-FRA": 8_000_000, "E-FRA": 8_000_000}
        extra = registry.spillover(offered)
        # .nl is fully coupled: it sees the whole overflow loss.
        assert extra["nl-anycast-1"] == pytest.approx(
            1 - 1_600_000 / 16_000_000
        )
        assert extra["nl-anycast-1"] > 0.85

    def test_missing_labels_count_as_zero(self, registry):
        extra = registry.spillover({"K-FRA": 10_000_000})
        assert extra["D-FRA"] > 0

    def test_spill_capped_at_one(self, registry):
        extra = registry.spillover({"K-FRA": 1e12})
        for value in extra.values():
            assert value <= 1.0

    def test_independent_facilities(self):
        reg = FacilityRegistry()
        reg.register("FRA-DC", "K-FRA", 100_000, 0.5)
        reg.register("SYD-DC", "D-SYD", 100_000, 0.5)
        extra = reg.spillover({"K-FRA": 1_000_000})
        assert "K-FRA" in extra
        assert "D-SYD" not in extra
