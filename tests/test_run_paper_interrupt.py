"""`scripts/run_paper.py` interrupt behaviour: exit 130, no traceback."""

import importlib
import pathlib
import sys

import pytest

from repro.sweep import SweepInterrupted

SCRIPTS = str(pathlib.Path(__file__).resolve().parent.parent / "scripts")


@pytest.fixture(scope="module")
def run_paper():
    sys.path.insert(0, SCRIPTS)
    try:
        yield importlib.import_module("run_paper")
    finally:
        sys.path.remove(SCRIPTS)


def _args(tmp_path, *extra):
    return [
        "--stubs", "40", "--vps", "20",
        "--out-dir", str(tmp_path / "out"), *extra,
    ]


class TestInterruptExitCode:
    def test_keyboard_interrupt_exits_130(
        self, run_paper, tmp_path, monkeypatch, capsys
    ):
        def boom(spec, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(run_paper, "run_sweep", boom)
        code = run_paper.main(_args(tmp_path))
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err

    def test_sweep_interrupted_exits_130_with_resume_hint(
        self, run_paper, tmp_path, monkeypatch, capsys
    ):
        ckpt = str(tmp_path / "sweep.ckpt")

        def boom(spec, **kwargs):
            raise SweepInterrupted("SIGINT", 1, 3, ckpt)

        monkeypatch.setattr(run_paper, "run_sweep", boom)
        code = run_paper.main(_args(tmp_path, "--checkpoint", ckpt))
        assert code == 130
        err = capsys.readouterr().err
        assert f"--resume {ckpt}" in err

    def test_missing_resume_checkpoint_is_usage_error(
        self, run_paper, tmp_path
    ):
        code = run_paper.main(
            _args(tmp_path, "--resume", str(tmp_path / "nope.ckpt"))
        )
        assert code == 2
