"""Tests for site flips (Figs. 8, 10, 11)."""

import numpy as np
import pytest

from repro.core import (
    BEHAVIOR_FAILED,
    BEHAVIOR_SHIFT_RETURN,
    BEHAVIOR_SHIFT_STAY,
    BEHAVIOR_STUCK,
    BEHAVIOR_UNAFFECTED,
    behaviour_census,
    classify_behaviour,
    clean_dataset,
    count_flips,
    flip_destinations,
    flips_figure,
    vp_timelines,
)
from repro.util import EVENT_1


@pytest.fixture(scope="module")
def cleaned(dataset):
    ds, _ = clean_dataset(dataset)
    return ds


class TestCountFlips:
    def test_flips_burst_during_events(self, cleaned):
        series = count_flips(cleaned, "K")
        event_mask = cleaned.grid.event_mask()
        event_total = series.values[event_mask].sum()
        quiet_total = series.values[~event_mask].sum()
        event_bins = int(event_mask.sum())
        quiet_bins = int((~event_mask).sum())
        assert event_total / event_bins > 5 * max(
            quiet_total / quiet_bins, 0.01
        )

    def test_unattacked_letters_flip_rarely(self, cleaned):
        for letter in ("L", "M"):
            series = count_flips(cleaned, letter)
            assert series.values.sum() < 0.02 * len(cleaned.vps) * 4

    def test_single_site_letter_never_flips(self, cleaned):
        assert count_flips(cleaned, "B").values.sum() == 0

    def test_figure(self, cleaned):
        fig = flips_figure(cleaned, ["E", "K"])
        assert fig.names == ["E", "K"]


class TestFlipDestinations:
    def test_k_lhr_shifters_mostly_land_on_ams(self, cleaned):
        # Fig. 10: 70-80 % of VPs leaving K-LHR/K-FRA go to K-AMS.
        dest = flip_destinations(cleaned, "K", "LHR", (6.8, 9.5))
        moved = {
            site: count
            for site, count in dest.items()
            if site not in ("(no reply)",) and "stuck" not in site
        }
        assert moved, "nobody moved"
        total_moved = sum(moved.values())
        assert moved.get("K-AMS", 0) / total_moved > 0.6

    def test_some_vps_stuck_at_origin(self, cleaned):
        dest = flip_destinations(cleaned, "K", "LHR", (6.8, 9.5))
        assert dest.get("K-LHR (stuck)", 0) > 0

    def test_unknown_site_raises(self, cleaned):
        with pytest.raises(KeyError):
            flip_destinations(cleaned, "K", "ZZZ", (6.8, 9.5))

    def test_bad_interval_raises(self, cleaned):
        with pytest.raises(ValueError):
            flip_destinations(cleaned, "K", "LHR", (-5.0, 0.0))


class TestClassification:
    def test_failed(self):
        during = np.array([-1, -1, -1])
        after = np.array([0, 0])
        assert classify_behaviour(0, during, after) == BEHAVIOR_FAILED

    def test_stuck(self):
        during = np.array([0, -1, 0, -1])
        after = np.array([0, 0])
        assert classify_behaviour(0, during, after) == BEHAVIOR_STUCK

    def test_unaffected(self):
        during = np.array([0, 0, 0])
        after = np.array([0])
        assert classify_behaviour(0, during, after) == BEHAVIOR_UNAFFECTED

    def test_shift_and_return(self):
        during = np.array([0, 1, 1])
        after = np.array([0, 0, 0])
        assert classify_behaviour(0, during, after) == (
            BEHAVIOR_SHIFT_RETURN
        )

    def test_shift_and_stay(self):
        during = np.array([1, 1])
        after = np.array([1, 1, 1])
        assert classify_behaviour(0, during, after) == BEHAVIOR_SHIFT_STAY


class TestTimelines:
    def test_timelines_cover_fig11_groups(self, cleaned):
        timelines = vp_timelines(
            cleaned, "K", ["LHR", "FRA"], event=EVENT_1
        )
        assert timelines, "no VPs start at K-LHR/K-FRA"
        census = behaviour_census(timelines)
        # The dominant groups of Fig. 11: shifters and stuck VPs.
        assert census.get(BEHAVIOR_SHIFT_RETURN, 0) > 0
        assert census.get(BEHAVIOR_STUCK, 0) > 0

    def test_sampling(self, cleaned):
        timelines = vp_timelines(
            cleaned, "K", ["LHR", "FRA"], sample=10,
            rng=np.random.default_rng(0),
        )
        assert len(timelines) <= 10

    def test_timeline_shape(self, cleaned):
        timelines = vp_timelines(cleaned, "K", ["LHR"], sample=3)
        for timeline in timelines:
            assert len(timeline.sites) == cleaned.grid.n_bins
            assert timeline.origin_site == "LHR"

    def test_unknown_origin_raises(self, cleaned):
        with pytest.raises(KeyError):
            vp_timelines(cleaned, "K", ["ZZZ"])
