"""Tests for the Series/Table result containers."""

import numpy as np
import pytest

from repro.core import Series, SeriesBundle, TableResult


def _series(name="x", values=(1.0, 2.0, 3.0, 4.0)):
    values = np.asarray(values, dtype=float)
    hours = np.arange(len(values), dtype=float) + 0.5
    return Series(name=name, hours=hours, values=values)


class TestSeries:
    def test_stats(self):
        s = _series()
        assert s.min() == 1.0
        assert s.max() == 4.0
        assert s.median() == 2.5

    def test_axis_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("x", np.arange(3, dtype=float), np.arange(4, dtype=float))

    def test_at_hour_picks_nearest(self):
        s = _series()
        assert s.at_hour(0.6) == 1.0
        assert s.at_hour(3.4) == 4.0

    def test_at_hour_empty_rejected(self):
        empty = Series("x", np.array([]), np.array([]))
        with pytest.raises(ValueError):
            empty.at_hour(1.0)

    def test_window(self):
        s = _series()
        w = s.window(1.0, 3.0)
        assert w.values.tolist() == [2.0, 3.0]

    def test_sparkline_shape(self):
        s = _series(values=np.linspace(0, 1, 200))
        line = s.sparkline(width=40)
        assert len(line) == 40
        assert line[0] == " "
        assert line[-1] == "@"

    def test_sparkline_flat(self):
        s = _series(values=[5.0, 5.0, 5.0])
        assert len(s.sparkline()) == 3

    def test_nan_handling(self):
        s = _series(values=[1.0, np.nan, 3.0])
        assert s.min() == 1.0
        assert s.max() == 3.0


class TestSeriesBundle:
    def test_get_and_names(self):
        bundle = SeriesBundle("t", (_series("a"), _series("b")))
        assert bundle.names == ["a", "b"]
        assert bundle.get("b").name == "b"
        with pytest.raises(KeyError):
            bundle.get("c")

    def test_render_contains_all(self):
        bundle = SeriesBundle("My figure", (_series("alpha"),))
        rendered = bundle.render()
        assert "My figure" in rendered
        assert "alpha" in rendered


class TestTableResult:
    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            TableResult("t", ("a", "b"), rows=((1,),))

    def test_column_and_row_lookup(self):
        table = TableResult(
            "t", ("letter", "value"), rows=(("A", 1), ("B", 2))
        )
        assert table.column("value") == [1, 2]
        assert table.row_for("B") == ("B", 2)
        with pytest.raises(KeyError):
            table.column("zzz")
        with pytest.raises(KeyError):
            table.row_for("Z")

    def test_render_aligned(self):
        table = TableResult(
            "Title", ("letter", "v"), rows=(("A", 1.234), ("BB", 22),)
        )
        rendered = table.render()
        assert "Title" in rendered
        assert "1.23" in rendered
        lines = rendered.splitlines()
        assert len(lines) == 5
