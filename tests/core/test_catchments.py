"""Tests for Table 2 (observed sites) and Figs. 5-6 (catchments)."""

import numpy as np
import pytest

from repro.core import (
    STABILITY_THRESHOLD,
    clean_dataset,
    critical_episodes,
    observed_site_count,
    observed_sites_table,
    site_minmax,
    site_minmax_table,
    site_timeseries,
    vps_per_site,
)


@pytest.fixture(scope="module")
def cleaned(dataset):
    ds, _ = clean_dataset(dataset)
    return ds


class TestVpsPerSite:
    def test_counts_partition_successes(self, cleaned):
        obs = cleaned.letter("K")
        counts = vps_per_site(cleaned, "K")
        successes = (obs.site_idx >= 0).sum(axis=1)
        assert (counts.sum(axis=1) == successes).all()

    def test_nonnegative(self, cleaned):
        assert (vps_per_site(cleaned, "E") >= 0).all()


class TestObservedSites:
    def test_observed_at_most_deployed(self, cleaned):
        for letter in cleaned.letters:
            obs = cleaned.letter(letter)
            observed = observed_site_count(cleaned, letter)
            assert 0 < observed <= len(obs.site_codes)

    def test_big_letters_have_unobserved_sites(self, cleaned):
        # Table 2: observed < reported for the biggest letters (not
        # every site is visible from the VP population).
        table = observed_sites_table(cleaned)
        row = table.row_for("L")
        assert row[2] <= row[1]

    def test_table_has_13_letters(self, cleaned):
        table = observed_sites_table(cleaned)
        assert len(table.rows) == len(cleaned.letters)
        assert table.column("letter") == sorted(cleaned.letters)


class TestSiteMinMax:
    def test_sorted_by_median(self, cleaned):
        stats = site_minmax(cleaned, "K")
        medians = [s.median for s in stats]
        assert medians == sorted(medians, reverse=True)

    def test_k_ams_grows_k_lhr_shrinks(self, cleaned):
        # Fig. 5b: K-AMS's max rises above median while K-LHR's min
        # collapses (shifted catchments).
        stats = {s.site: s for s in site_minmax(cleaned, "K")}
        assert stats["K-AMS"].max_normalized > 1.1
        assert stats["K-LHR"].min_normalized < 0.6

    def test_stability_threshold(self, cleaned):
        stats = site_minmax(cleaned, "K")
        for s in stats:
            assert s.stable == (s.median >= STABILITY_THRESHOLD)

    def test_table_renders(self, cleaned):
        table = site_minmax_table(cleaned, "E")
        assert "Fig. 5" in table.render()


class TestSiteTimeseries:
    def test_normalised_to_median(self, cleaned):
        bundle = site_timeseries(cleaned, "K", stable_only=True)
        for series in bundle.series:
            assert np.median(series.values) == pytest.approx(1.0, abs=0.2)

    def test_stable_only_filters(self, cleaned):
        all_sites = site_timeseries(cleaned, "K", stable_only=False)
        stable = site_timeseries(cleaned, "K", stable_only=True)
        assert len(stable.series) <= len(all_sites.series)

    def test_e_withdrawers_flatline_after_second_event(self, cleaned):
        bundle = site_timeseries(cleaned, "E", stable_only=False)
        for name in bundle.names:
            if name.startswith("E-CDG"):
                series = bundle.get(name)
                # After hour 31 the site is withdrawn: zero catchment.
                tail = series.window(32.0, 48.0)
                assert tail.max() == 0.0
                break
        else:
            pytest.fail("E-CDG series missing")


class TestCriticalEpisodes:
    def test_episodes_align_with_events(self, cleaned):
        episodes = critical_episodes(cleaned, "K")
        lhr = episodes.get("K-LHR")
        assert lhr is not None
        event_mask = cleaned.grid.event_mask()
        # K-LHR's critical bins fall (mostly) in/after event windows.
        assert lhr[event_mask].sum() > 0

    def test_unstable_sites_excluded(self, cleaned):
        episodes = critical_episodes(cleaned, "K")
        stats = {s.site: s for s in site_minmax(cleaned, "K")}
        for site in episodes:
            assert stats[site].median >= STABILITY_THRESHOLD
