"""Tests for the §2.2 withdraw-vs-absorb policy model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    AnycastModel,
    LinkGroup,
    best_withdrawal,
    classify_case,
    default_assignment,
    expected_happiness,
    figure2_model,
    happiness,
    optimal_assignment,
    withdrawal_assignment,
)


class TestModelValidation:
    def test_group_validation(self):
        with pytest.raises(ValueError):
            LinkGroup("g", attack=-1, clients=0, site_options=("s",))
        with pytest.raises(ValueError):
            LinkGroup("g", attack=0, clients=-1, site_options=("s",))
        with pytest.raises(ValueError):
            LinkGroup("g", attack=0, clients=0, site_options=())

    def test_model_validation(self):
        with pytest.raises(ValueError):
            AnycastModel(capacities={"s": 0.0})
        with pytest.raises(ValueError):
            AnycastModel(
                capacities={"s": 1.0},
                groups=(LinkGroup("g", 0, 1, ("zz",)),),
            )

    def test_happiness_requires_full_assignment(self):
        model = figure2_model(0.1, 0.1)
        with pytest.raises(ValueError):
            happiness(model, {})


class TestPaperCases:
    """The five cases of section 2.2, with their optimal H."""

    def test_case1_no_harm(self):
        assert classify_case(0.4, 0.4) == 1
        model = figure2_model(0.4, 0.4)
        assert happiness(model, default_assignment(model)) == 4

    def test_case2_withdraw_helps(self):
        # A0 + A1 > s1 but each fits a small site: withdrawing the
        # route that pins ISP1 to s1 serves everyone ("less is more").
        assert classify_case(0.7, 0.7) == 2
        model = figure2_model(0.7, 0.7)
        assert happiness(model, default_assignment(model)) == 2
        _, best = optimal_assignment(model)
        assert best == 4

    def test_case3_big_site_takes_all(self):
        assert classify_case(4.0, 4.0) == 3
        model = figure2_model(4.0, 4.0)
        assignment, best = optimal_assignment(model)
        assert best == 4
        assert assignment["ISP0"] == "S3"
        assert assignment["ISP1"] == "S3"

    def test_case4_targeted_reroute(self):
        assert classify_case(6.0, 6.0) == 4
        model = figure2_model(6.0, 6.0)
        _, best = optimal_assignment(model)
        assert best == 3  # c0 is sacrificed with A0 on s1

    def test_case5_absorb_and_contain(self):
        assert classify_case(11.0, 11.0) == 5
        model = figure2_model(11.0, 11.0)
        _, best = optimal_assignment(model)
        assert best == 2  # only c2 and c3 can be protected

    @pytest.mark.parametrize("a", [0.2, 0.7, 4.0, 6.0, 11.0])
    def test_optimal_matches_paper_h(self, a):
        case = classify_case(a, a)
        model = figure2_model(a, a)
        _, best = optimal_assignment(model)
        assert best == expected_happiness(case)

    def test_case_boundaries(self):
        assert classify_case(0.5, 0.5) == 1
        assert classify_case(1.0, 1.0) == 2
        assert classify_case(5.0, 5.0) == 3
        assert classify_case(10.0, 10.0) == 4  # sum exceeds S3, each fits
        assert classify_case(10.1, 0.0) == 5


class TestWithdrawal:
    def test_withdrawal_moves_groups(self):
        model = figure2_model(0.7, 0.7)
        assignment = withdrawal_assignment(model, {"s1"})
        assert assignment["ISP0"] == "s2"
        assert assignment["ISP1"] == "s2"

    def test_group_with_no_alternative_stays(self):
        model = figure2_model(0.7, 0.7)
        assignment = withdrawal_assignment(model, {"s2"})
        assert assignment["c2"] == "s2"  # nowhere else to go

    def test_best_withdrawal_case2_not_better_than_reroute(self):
        # Pure withdrawal of s1 dumps BOTH attackers on s2 (H=3: c0
        # and c1 lost... actually c0/c1 travel with their ISPs).
        model = figure2_model(0.7, 0.7)
        _, h = best_withdrawal(model)
        _, optimal = optimal_assignment(model)
        assert h <= optimal

    def test_best_withdrawal_prefers_no_action_when_equal(self):
        model = figure2_model(0.1, 0.1)
        withdrawn, h = best_withdrawal(model)
        assert withdrawn == set()
        assert h == 4


class TestProperties:
    @given(
        a0=st.floats(min_value=0, max_value=20),
        a1=st.floats(min_value=0, max_value=20),
    )
    def test_optimal_at_least_default(self, a0, a1):
        model = figure2_model(a0, a1)
        default_h = happiness(model, default_assignment(model))
        _, best = optimal_assignment(model)
        assert best >= default_h

    @given(
        a0=st.floats(min_value=0, max_value=20),
        a1=st.floats(min_value=0, max_value=20),
    )
    def test_happiness_bounded(self, a0, a1):
        model = figure2_model(a0, a1)
        _, best = optimal_assignment(model)
        assert 0 <= best <= model.total_clients

    @given(
        a0=st.floats(min_value=0, max_value=20),
        a1=st.floats(min_value=0, max_value=20),
    )
    def test_case_h_is_achievable(self, a0, a1):
        case = classify_case(a0, a1)
        model = figure2_model(a0, a1)
        _, best = optimal_assignment(model)
        assert best >= expected_happiness(case)

    @given(a0=st.floats(min_value=0, max_value=20))
    def test_monotone_in_attack(self, a0):
        weaker = optimal_assignment(figure2_model(a0, 0.0))[1]
        stronger = optimal_assignment(figure2_model(a0 + 5.0, 0.0))[1]
        assert stronger <= weaker

    @given(
        a0=st.floats(min_value=0, max_value=20),
        a1=st.floats(min_value=0, max_value=20),
    )
    def test_withdrawal_never_beats_full_control(self, a0, a1):
        model = figure2_model(a0, a1)
        _, withdrawal_h = best_withdrawal(model)
        _, optimal_h = optimal_assignment(model)
        assert withdrawal_h <= optimal_h
