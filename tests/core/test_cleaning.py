"""Tests for the section-2.4.1 cleaning pipeline."""

import numpy as np
import pytest

from repro.core import CleaningReport, clean_dataset, detect_hijacked
from repro.datasets import MIN_FIRMWARE


class TestCleanScenario:
    def test_drops_old_firmware(self, dataset):
        cleaned, report = clean_dataset(dataset)
        assert (cleaned.vps.firmware >= MIN_FIRMWARE).all()
        true_old = int((dataset.vps.firmware < MIN_FIRMWARE).sum())
        assert report.n_old_firmware == true_old

    def test_detects_hijacked_vps(self, dataset):
        detected = detect_hijacked(dataset)
        truth = dataset.vps.hijacked
        if truth.sum() == 0:
            pytest.skip("no hijacked VPs in this draw")
        # High recall and precision against ground truth.
        recall = (detected & truth).sum() / truth.sum()
        assert recall > 0.8
        if detected.sum():
            precision = (detected & truth).sum() / detected.sum()
            assert precision > 0.8

    def test_cleaning_preserves_nearly_all_vps(self, dataset):
        # The paper keeps > 96 % of probes after cleaning.
        _, report = clean_dataset(dataset)
        assert report.kept_fraction > 0.9

    def test_cleaned_dataset_has_no_flagged_vps(self, dataset):
        cleaned, report = clean_dataset(dataset)
        assert len(cleaned.vps) == report.n_kept
        dropped = set(report.old_firmware_ids) | set(report.hijacked_ids)
        assert dropped.isdisjoint(int(v) for v in cleaned.vps.ids)

    def test_counts_consistent(self, dataset):
        _, report = clean_dataset(dataset)
        assert report.n_kept == (
            report.n_total - report.n_old_firmware - report.n_hijacked
        )
        assert len(report.old_firmware_ids) == report.n_old_firmware
        assert len(report.hijacked_ids) == report.n_hijacked


class TestReport:
    def test_empty_report(self):
        report = CleaningReport(0, 0, 0, (), ())
        assert report.kept_fraction == 0.0

    def test_fraction(self):
        report = CleaningReport(100, 3, 1, tuple(range(3)), (99,))
        assert report.kept_fraction == pytest.approx(0.96)


class TestHijackHeuristics:
    def test_slow_bogus_replies_not_flagged(self, dataset):
        """A VP with unparseable replies at normal RTT (e.g. a broken
        middlebox far away) must NOT be flagged: the paper requires
        BOTH the pattern mismatch and the short RTT."""
        from repro.datasets import RESP_BOGUS

        modified = dataset.select_vps(
            np.ones(len(dataset.vps), dtype=bool)
        )
        letter = sorted(modified.letters)[0]
        obs = modified.letter(letter)
        victim = 0
        for letter_obs in modified.letters.values():
            letter_obs.site_idx[:, victim] = RESP_BOGUS
            letter_obs.rtt_ms[:, victim] = 80.0  # slow: not local
        detected = detect_hijacked(modified)
        assert not detected[victim]
        del obs
