"""Tests for probe-record binning with the paper's preference rule."""

import pytest

from repro.core import bin_probe_records
from repro.datasets import (
    ProbeRecord,
    RESP_BOGUS,
    RESP_ERROR,
    RESP_NOT_PROBED,
    RESP_TIMEOUT,
)
from repro.dns import format_identity
from repro.util import TimeGrid


def _record(vp=1, t=100.0, answer=None, rtt=None, rcode=None, letter="K"):
    return ProbeRecord(
        vp_id=vp, letter=letter, timestamp=t, answer=answer,
        rtt_ms=rtt, rcode=rcode, firmware=4700,
    )


def _site(code, server=1):
    return format_identity("K", code, server)


@pytest.fixture
def grid():
    return TimeGrid(start=0, bin_seconds=600, n_bins=3)


class TestPreferenceRule:
    def test_site_beats_error(self, grid):
        records = [
            _record(t=100.0, rcode=2),
            _record(t=200.0, answer=_site("AMS"), rtt=30.0, rcode=0),
        ]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.site_idx[0, 0] == 0
        assert obs.site_codes == ["AMS"]

    def test_site_beats_error_regardless_of_order(self, grid):
        records = [
            _record(t=100.0, answer=_site("AMS"), rtt=30.0, rcode=0),
            _record(t=200.0, rcode=2),
        ]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.site_idx[0, 0] == 0

    def test_error_beats_timeout(self, grid):
        records = [
            _record(t=100.0),            # timeout
            _record(t=200.0, rcode=5),   # REFUSED
        ]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.site_idx[0, 0] == RESP_ERROR

    def test_timeout_beats_missing(self, grid):
        records = [_record(t=100.0)]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.site_idx[0, 0] == RESP_TIMEOUT
        assert obs.site_idx[1, 0] == RESP_NOT_PROBED

    def test_unparseable_reply_is_bogus_but_beats_error(self, grid):
        records = [
            _record(t=100.0, rcode=2),
            _record(t=200.0, answer="garbage", rtt=3.0, rcode=0),
        ]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.site_idx[0, 0] == RESP_BOGUS

    def test_lowest_rtt_kept_among_successes(self, grid):
        records = [
            _record(t=100.0, answer=_site("AMS", 1), rtt=50.0, rcode=0),
            _record(t=200.0, answer=_site("AMS", 2), rtt=20.0, rcode=0),
            _record(t=300.0, answer=_site("AMS", 3), rtt=40.0, rcode=0),
        ]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.rtt_ms[0, 0] == pytest.approx(20.0)
        assert obs.server[0, 0] == 2


class TestScoping:
    def test_other_letters_ignored(self, grid):
        records = [_record(t=100.0, rcode=2, letter="E")]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.site_idx[0, 0] == RESP_NOT_PROBED

    def test_unknown_vp_ignored(self, grid):
        records = [_record(vp=99, t=100.0, rcode=2)]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.site_idx[0, 0] == RESP_NOT_PROBED

    def test_out_of_grid_ignored(self, grid):
        records = [_record(t=99_999.0, rcode=2)]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert (obs.site_idx == RESP_NOT_PROBED).all()

    def test_fixed_site_list_enforced(self, grid):
        records = [_record(t=100.0, answer=_site("AMS"), rtt=10.0, rcode=0)]
        with pytest.raises(ValueError):
            bin_probe_records(
                records, "K", grid, vp_ids=[1], site_codes=["LHR"]
            )

    def test_site_order_discovery(self, grid):
        records = [
            _record(t=100.0, answer=_site("LHR"), rtt=10.0, rcode=0),
            _record(t=700.0, answer=_site("AMS"), rtt=10.0, rcode=0),
        ]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1])
        assert obs.site_codes == ["LHR", "AMS"]
        assert obs.site_idx[0, 0] == 0
        assert obs.site_idx[1, 0] == 1

    def test_multiple_vps(self, grid):
        records = [
            _record(vp=1, t=100.0, answer=_site("AMS"), rtt=10.0, rcode=0),
            _record(vp=2, t=100.0),
        ]
        obs = bin_probe_records(records, "K", grid, vp_ids=[1, 2])
        assert obs.site_idx[0, 0] == 0
        assert obs.site_idx[0, 1] == RESP_TIMEOUT
