"""Tests for collateral damage (Figs. 14-15) and the §3.2.1 R^2."""

import pytest

from repro.core import (
    clean_dataset,
    collateral_figure,
    collateral_sites,
    correlation_table,
    nl_event_minimum,
    nl_figure,
    silence_score,
    sites_vs_resilience,
)
from repro.rootdns import LETTERS_SPEC


@pytest.fixture(scope="module")
def cleaned(dataset):
    ds, _ = clean_dataset(dataset)
    return ds


class TestCollateralSites:
    def test_d_fra_and_d_syd_flagged(self, cleaned):
        # Fig. 14: D was not attacked yet its Frankfurt and Sydney
        # sites dipped with the events.
        flagged = {c.site for c in collateral_sites(cleaned, "D")}
        assert "D-FRA" in flagged
        assert "D-SYD" in flagged

    def test_dips_meet_threshold(self, cleaned):
        for site in collateral_sites(cleaned, "D"):
            assert site.dip_fraction >= 0.10
            assert site.median_vps >= 20

    def test_most_d_sites_unaffected(self, cleaned):
        obs = cleaned.letter("D")
        flagged = collateral_sites(cleaned, "D")
        assert len(flagged) < 0.2 * len(obs.site_codes)

    def test_figure(self, cleaned):
        fig = collateral_figure(cleaned, "D")
        assert fig.names == [
            c.site for c in collateral_sites(cleaned, "D")
        ]


class TestNlCollateral:
    def test_colocated_nodes_nearly_silent(self, scenario):
        # Fig. 15: the two co-located .nl nodes show nearly no
        # queries during both events.
        for node in ("nl-anycast-1", "nl-anycast-2"):
            assert nl_event_minimum(scenario.nl, node) < 0.25

    def test_standalone_nodes_keep_serving(self, scenario):
        for node in ("nl-uni-1", "nl-uni-4"):
            assert nl_event_minimum(scenario.nl, node) > 0.6

    def test_figure_has_six_nodes(self, scenario):
        assert len(nl_figure(scenario.nl).series) == 6

    def test_unknown_node_raises(self, scenario):
        with pytest.raises(KeyError):
            nl_event_minimum(scenario.nl, "nl-zz")

    def test_silence_score(self, scenario):
        fig = nl_figure(scenario.nl)
        colocated = silence_score(fig.get("nl-anycast-1"), scenario.grid)
        standalone = silence_score(fig.get("nl-uni-1"), scenario.grid)
        assert colocated > 0.7
        assert standalone < 0.4


class TestCorrelation:
    @pytest.fixture(scope="class")
    def fit(self, cleaned):
        site_counts = {L: s.n_sites for L, s in LETTERS_SPEC.items()}
        return sites_vs_resilience(cleaned, site_counts)

    def test_positive_relationship(self, fit):
        # More sites -> better worst responsiveness (section 3.2.1).
        assert fit.slope > 0

    def test_strong_r_squared(self, fit):
        # Paper reports R^2 = 0.87; our substrate lands in the same
        # "strong correlation" regime.
        assert fit.r_squared > 0.55

    def test_a_excluded_by_default(self, fit):
        assert "A" not in fit.letters

    def test_table(self, fit):
        table = correlation_table(fit)
        assert table.rows[-1][0] == "R^2"
        assert 0.0 <= table.rows[-1][2] <= 1.0

    def test_too_few_letters_degrades(self, cleaned):
        import numpy as np

        fit = sites_vs_resilience(cleaned, {"B": 1, "H": 2})
        assert np.isnan(fit.slope)
        assert np.isnan(fit.r_squared)
        assert fit.degraded
        assert fit.quality[0].metric == "correlation"
        # The per-letter numbers that do exist are kept.
        assert fit.letters == ("B", "H")
        assert all(np.isfinite(w) for w in fit.worst)

    def test_extremes_match_architecture(self, fit):
        by_letter = dict(zip(fit.letters, fit.worst))
        assert by_letter["B"] == min(by_letter.values())
        assert by_letter["L"] > 0.9
