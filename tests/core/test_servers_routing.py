"""Tests for Fig. 12 (per-server) and Fig. 9 (route churn) analyses."""

import numpy as np
import pytest

from repro.core import (
    answering_servers_per_bin,
    clean_dataset,
    event_concentration,
    letters_with_event_churn,
    route_change_series,
    server_reachability,
    shed_detected,
)


@pytest.fixture(scope="module")
def cleaned(dataset):
    ds, _ = clean_dataset(dataset)
    return ds


class TestServerReachability:
    def test_three_servers_at_k_fra(self, cleaned):
        fig = server_reachability(cleaned, "K", "FRA")
        assert len(fig.series) == 3

    def test_k_fra_sheds_to_one_server(self, cleaned):
        # Fig. 12 top: during each event all replies come from one
        # server.
        series = answering_servers_per_bin(cleaned, "K", "FRA")
        during = series.at_hour(8.0)
        quiet = series.at_hour(20.0)
        assert quiet == 3.0
        assert during == 1.0

    def test_k_nrt_keeps_all_servers(self, cleaned):
        # Fig. 12 bottom: all three K-NRT servers answer, degraded.
        series = answering_servers_per_bin(cleaned, "K", "NRT")
        assert series.at_hour(8.0) >= 2.0

    def test_shed_detection(self, cleaned):
        assert shed_detected(cleaned, "K", "FRA", (6.8, 9.5))
        assert not shed_detected(cleaned, "K", "NRT", (6.8, 9.5))

    def test_unknown_site_raises(self, cleaned):
        with pytest.raises(KeyError):
            server_reachability(cleaned, "K", "ZZZ")
        with pytest.raises(KeyError):
            answering_servers_per_bin(cleaned, "K", "ZZZ")


class TestRouteChurn:
    def test_series_bundle(self, scenario):
        fig = route_change_series(scenario.route_changes, scenario.grid)
        assert sorted(fig.names) == sorted(scenario.letters)

    def test_length_mismatch_rejected(self, scenario):
        with pytest.raises(ValueError):
            route_change_series({"K": np.zeros(5)}, scenario.grid)

    def test_event_concentration_bounds(self, scenario):
        for letter in scenario.letters:
            value = event_concentration(
                scenario.route_changes[letter], scenario.grid
            )
            assert 0.0 <= value <= 1.0

    def test_zero_churn_concentration(self, scenario):
        assert event_concentration(
            np.zeros(scenario.grid.n_bins), scenario.grid
        ) == 0.0

    def test_churning_letters_were_attacked(self, scenario):
        churners = letters_with_event_churn(
            scenario.route_changes, scenario.grid
        )
        assert churners, "no letter shows event churn"
        # The paper reads C, E, F, G, H, J, K off Fig. 9; at minimum
        # our withdraw/partial letters must appear.
        assert "H" in churners
        assert "K" in churners
        assert "E" in churners
        for letter in churners:
            assert letter not in ("D", "L", "M")
