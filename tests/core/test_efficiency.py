"""Tests for the catchment-efficiency analysis."""

import numpy as np
import pytest

from repro.core import (
    catchment_efficiency,
    efficiency_table,
    inflation_series,
)


class TestEfficiency:
    def test_stats_bounds(self, scenario):
        stats = catchment_efficiency(
            scenario.atlas, scenario.deployments["K"]
        )
        assert 0.0 <= stats.nearest_fraction <= 1.0
        assert stats.median_inflation_km >= 0.0
        assert stats.p90_inflation_km >= stats.median_inflation_km

    def test_geographic_routing_is_mostly_efficient(self, scenario):
        # Quiet-time anycast routes most VPs near their closest site
        # (the headline finding of the §4 efficiency literature).
        quiet = np.arange(100, 140)  # hours ~16-23, between events
        stats = catchment_efficiency(
            scenario.atlas, scenario.deployments["K"], bins=quiet
        )
        assert stats.nearest_fraction > 0.5

    def test_single_site_letter_has_zero_inflation(self, scenario):
        stats = catchment_efficiency(
            scenario.atlas, scenario.deployments["B"]
        )
        assert stats.median_inflation_km == pytest.approx(0.0)
        assert stats.nearest_fraction == 1.0

    def test_inflation_rises_during_events(self, scenario):
        # Withdrawals push catchments to farther sites.
        series = inflation_series(
            scenario.atlas, scenario.deployments["E"]
        )
        mask = scenario.event_mask()
        quiet = float(np.nanmedian(series.values[~mask]))
        during = float(np.nanmax(series.values[mask]))
        assert during > quiet

    def test_table_covers_letters(self, scenario):
        table = efficiency_table(scenario.atlas, scenario.deployments)
        assert len(table.rows) == len(scenario.letters)

    def test_more_sites_shorter_distances(self, scenario):
        table = efficiency_table(scenario.atlas, scenario.deployments)
        med = {row[0]: row[2] for row in table.rows}
        # L (113 sites) serves from closer than B (one site in LA).
        assert med["L"] < med["B"]
