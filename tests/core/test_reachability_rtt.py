"""Tests for Fig. 3 (reachability) and Figs. 4/7/13 (RTT) analyses."""

import numpy as np
import pytest

from repro.core import (
    clean_dataset,
    letter_reachability,
    letter_rtt_series,
    reachability_figure,
    rtt_figure,
    rtt_significantly_changed,
    server_rtt_series,
    site_rtt_figure,
    site_rtt_series,
    worst_responsiveness,
)


@pytest.fixture(scope="module")
def cleaned(dataset):
    ds, _ = clean_dataset(dataset)
    return ds


class TestReachability:
    def test_series_shape(self, cleaned):
        series = letter_reachability(cleaned, "K")
        assert series.values.shape == (cleaned.grid.n_bins,)
        assert (series.values >= 0).all()

    def test_b_root_dips_hard_during_events(self, cleaned):
        series = letter_reachability(cleaned, "B")
        during = series.at_hour(8.0)
        quiet = series.at_hour(20.0)
        assert during < 0.35 * quiet

    def test_unattacked_letters_flat(self, cleaned):
        for letter in ("D", "L", "M"):
            assert worst_responsiveness(cleaned, letter) > 0.9

    def test_worst_ordering_matches_paper(self, cleaned):
        # B (unicast) suffered most, then H (pri/backup); letters with
        # many sites barely dipped (section 3.2.1).
        worst = {
            letter: worst_responsiveness(cleaned, letter)
            for letter in "BHKL"
        }
        assert worst["B"] < worst["K"]
        assert worst["H"] < worst["K"]
        assert worst["K"] < worst["L"]

    def test_a_root_scaling_compensates_sampling(self, cleaned):
        scaled = letter_reachability(cleaned, "A", scale_undersampled=True)
        raw = letter_reachability(cleaned, "A", scale_undersampled=False)
        # Scaled A counts approach the full VP population.
        assert scaled.median() > 2.5 * raw.median()
        assert scaled.median() == pytest.approx(
            len(cleaned.vps), rel=0.15
        )

    def test_figure_bundle(self, cleaned):
        figure = reachability_figure(cleaned, ["B", "K"])
        assert figure.names == ["B", "K"]
        rendered = figure.render()
        assert "Fig. 3" in rendered
        assert "B" in rendered


class TestLetterRtt:
    def test_h_root_rtt_steps_up_during_failover(self, cleaned):
        # H's primary (US east) withdraws; mostly-EU VPs reach the
        # west-coast backup at higher RTT (Fig. 4).
        series = letter_rtt_series(cleaned, "H")
        during = series.at_hour(8.0)
        quiet = series.at_hour(20.0)
        assert during > quiet + 30.0

    def test_b_root_rtt_stable_for_survivors(self, cleaned):
        # B kept one site; successful queries keep their RTT (Fig. 4).
        series = letter_rtt_series(cleaned, "B")
        during = series.at_hour(8.0)
        quiet = series.at_hour(20.0)
        assert abs(during - quiet) < 0.35 * quiet

    def test_significance_filter(self, cleaned):
        assert rtt_significantly_changed(cleaned, "K")
        assert not rtt_significantly_changed(cleaned, "L")

    def test_figure(self, cleaned):
        fig = rtt_figure(cleaned, ["B", "G", "H", "K"])
        assert len(fig.series) == 4


class TestSiteRtt:
    def test_k_ams_shows_bufferbloat(self, cleaned):
        # Fig. 7: K-AMS goes from tens of ms to over a second.
        series = site_rtt_series(cleaned, "K", "AMS")
        quiet = series.at_hour(20.0)
        peak = np.nanmax(series.values)
        assert quiet < 150.0
        assert peak > 800.0

    def test_unknown_site_raises(self, cleaned):
        with pytest.raises(KeyError):
            site_rtt_series(cleaned, "K", "ZZZ")

    def test_site_figure(self, cleaned):
        fig = site_rtt_figure(cleaned, "K", ["AMS", "NRT"])
        assert fig.names == ["K-AMS", "K-NRT"]


class TestServerRtt:
    def test_per_server_series_exist(self, cleaned):
        fig = server_rtt_series(cleaned, "K", "NRT")
        assert len(fig.series) == 3  # K-NRT runs three servers
        assert all(name.startswith("K-NRT-S") for name in fig.names)

    def test_hot_server_slower_under_load(self, cleaned):
        # Fig. 13 bottom: K-NRT-S2 queues deeper than its siblings.
        fig = server_rtt_series(cleaned, "K", "NRT")
        hot = fig.get("K-NRT-S2")
        cool = fig.get("K-NRT-S1")
        hour = 8.0
        assert hot.at_hour(hour) > cool.at_hour(hour)

    def test_unknown_site_raises(self, cleaned):
        with pytest.raises(KeyError):
            server_rtt_series(cleaned, "K", "ZZZ")
