"""Tests for Table 3: event-size estimation from RSSAC-002 reports."""

import numpy as np
import pytest

from repro.core import (
    estimate_bounds,
    event_size_table,
    letter_event_size,
    robust_baseline,
)
from repro.rootdns import ATTACKED_LETTERS, RSSAC_REPORTING_LETTERS
from repro.rssac import DailyReport


def _report(letter, date, queries, uniques=1e6, responses=None, hist=None):
    return DailyReport(
        letter=letter, date=date, queries=queries,
        responses=responses if responses is not None else queries,
        unique_sources=uniques,
        query_size_hist=hist or {32: queries},
        response_size_hist={608: queries},
    )


def _reports(letter="A", base=3.456e9, attack=49e9):
    """7 quiet days + 2 event days with a distinctive attack bin."""
    days = [
        _report(letter, f"2015-11-2{d}", base * (1 + 0.01 * d),
                hist={32: base})
        for d in range(3, 10)
    ]
    days.append(
        _report(letter, "2015-11-30", base + attack, uniques=1.8e9,
                hist={32: base, 48: attack})
    )
    days.append(
        _report(letter, "2015-12-01", base + attack * 3600 / 9600,
                uniques=1.3e9,
                hist={32: base, 16: attack * 3600 / 9600})
    )
    return tuple(days)


class TestRobustBaseline:
    def test_mean_of_quiet_days(self):
        reports = [_report("A", f"d{i}", 100.0) for i in range(5)]
        queries, _ = robust_baseline(reports)
        assert queries == pytest.approx(100.0)

    def test_outlier_dropped(self):
        # A-Root's independent Nov 28 event is dropped from baselines.
        reports = [_report("A", f"d{i}", 100.0) for i in range(6)]
        reports.append(_report("A", "2015-11-28", 5000.0))
        queries, _ = robust_baseline(reports)
        assert queries == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            robust_baseline([])


class TestLetterEventSize:
    def test_delta_rate_uses_event_duration(self):
        size = letter_event_size(_reports(), "2015-11-30", attacked=True)
        # 49e9 extra queries over 160 minutes ~ 5.1 Mq/s.
        assert size.delta_queries_mqps == pytest.approx(5.1, rel=0.03)

    def test_second_event_uses_60_minutes(self):
        size = letter_event_size(_reports(), "2015-12-01", attacked=True)
        assert size.delta_queries_mqps == pytest.approx(5.1, rel=0.03)

    def test_bitrate_in_paper_ballpark(self):
        size = letter_event_size(_reports(), "2015-11-30", attacked=True)
        # Paper: 5.12 Mq/s of ~84 B queries = 3.44 Gb/s.
        assert 2.8 < size.delta_queries_gbps < 4.5

    def test_unique_ratio(self):
        size = letter_event_size(_reports(), "2015-11-30", attacked=True)
        assert size.unique_ratio == pytest.approx(1.8e9 / 1e6, rel=0.01)

    def test_unknown_date_rejected(self):
        with pytest.raises(ValueError):
            letter_event_size(_reports(), "2015-06-25", attacked=True)

    def test_missing_event_day_rejected(self):
        with pytest.raises(ValueError):
            letter_event_size(_reports()[:7], "2015-11-30", attacked=True)


class TestBounds:
    def test_scaled_and_upper(self):
        sizes = [
            letter_event_size(_reports("A"), "2015-11-30", True),
            letter_event_size(
                _reports("K", attack=10e9), "2015-11-30", True
            ),
        ]
        bounds = estimate_bounds(sizes, "2015-11-30", n_attacked_letters=10)
        assert bounds.lower_mqps == pytest.approx(
            sizes[0].delta_queries_mqps + sizes[1].delta_queries_mqps
        )
        assert bounds.scaled_mqps == pytest.approx(bounds.lower_mqps * 5)
        assert bounds.upper_mqps == pytest.approx(
            sizes[0].delta_queries_mqps * 10
        )

    def test_unattacked_excluded(self):
        sizes = [
            letter_event_size(_reports("A"), "2015-11-30", True),
            letter_event_size(_reports("L"), "2015-11-30", False),
        ]
        bounds = estimate_bounds(sizes, "2015-11-30", 10)
        assert bounds.lower_mqps == pytest.approx(
            sizes[0].delta_queries_mqps
        )

    def test_no_attacked_degrades_to_nan(self):
        sizes = [letter_event_size(_reports("L"), "2015-11-30", False)]
        bounds = estimate_bounds(sizes, "2015-11-30", 10)
        assert np.isnan(bounds.lower_mqps)
        assert np.isnan(bounds.scaled_mqps)
        assert np.isnan(bounds.upper_gbps)
        assert bounds.degraded
        assert bounds.quality[0].metric == "event_size"


class TestScenarioTable3:
    @pytest.fixture(scope="class")
    def table(self, scenario):
        rssac = {
            letter: scenario.rssac[letter]
            for letter in RSSAC_REPORTING_LETTERS
        }
        return event_size_table(
            rssac, ATTACKED_LETTERS, "2015-11-30",
            n_attacked_letters=len(ATTACKED_LETTERS),
        )

    def test_shape(self, table):
        # 5 reporting letters + lower/scaled/upper rows.
        assert len(table.rows) == 8
        assert table.rows[-3][0] == "lower"
        assert table.rows[-1][0] == "upper"

    def test_a_root_measures_most(self, table):
        deltas = {
            row[0]: row[1] for row in table.rows[:5]
        }
        assert deltas["A"] > deltas["J"] > deltas["H"]
        assert deltas["A"] > 3.0  # paper: 5.12 Mq/s

    def test_l_marked_unattacked_and_small(self, table):
        row = table.row_for("L*")
        assert row[1] < 0.5

    def test_bounds_ordering(self, table):
        lower = table.row_for("lower")[1]
        scaled = table.row_for("scaled")[1]
        upper = table.row_for("upper")[1]
        assert lower < scaled < upper
        # Paper: lower 8.3, scaled 20.8, upper 51.2 Mq/s.
        assert 4 < lower < 12
        assert 25 < upper < 60

    def test_upper_bound_attack_is_tens_of_gbps(self, table):
        # Section 3.1: ~35-40 Gb/s aggregate query traffic.
        upper_gbps = table.row_for("upper")[2]
        assert 20 < upper_gbps < 45

    def test_unique_ip_surge(self, table):
        # Table 3: 6.5x-340x more unique addresses during the events.
        ratios = [
            row[4] for row in table.rows[:5]
            if isinstance(row[4], float) and np.isfinite(row[4])
        ]
        assert max(ratios) > 50
        assert min(ratios) > 2
