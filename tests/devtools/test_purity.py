"""Interprocedural purity analysis (PUR001-PUR006) against fixture
packages, plus the meta-test: the real tree has zero unjustified
purity violations.

Fixture packages are written into ``tmp_path`` with a real
``__init__.py`` layout so module naming, relative-import resolution,
and call linking run exactly as they do on ``src/repro``.
"""

import textwrap
from pathlib import Path

from repro.devtools.purity import (
    PURITY_ROOTS,
    default_allowlist_path,
    parse_allowlist,
    run_purity,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _write_package(root, files):
    """Create package *files* (relative path -> source) under *root*."""
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def _three_hop_package(tmp_path, leaf_body):
    """A package whose root reaches *leaf_body* three calls deep:
    ``pkg.worker.run -> pkg.mid.step -> pkg.leaf.tick``."""
    return _write_package(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/worker.py": """
                from .mid import step

                def run(config):
                    return step(config)
            """,
            "pkg/mid.py": """
                from . import leaf

                def step(config):
                    return leaf.tick(config)
            """,
            "pkg/leaf.py": leaf_body,
        },
    )


ROOT = {"pkg.worker.run": "fixture root"}


def _empty_allowlist(tmp_path):
    """An empty grants file (a *missing* explicit path is an error by
    design -- a typo must not silently drop every grant)."""
    path = tmp_path / "allow-nothing.txt"
    path.write_text("# no grants\n")
    return path


def _check(tmp_path, leaf_body):
    _three_hop_package(tmp_path, leaf_body)
    return run_purity(
        [str(tmp_path)], roots=ROOT,
        allowlist_path=_empty_allowlist(tmp_path),
    )


class TestThreeHopWitness:
    """The acceptance fixture: a wall-clock read three calls deep."""

    LEAF = """
        import time

        def tick(config):
            return time.time()
    """

    def test_detected_with_rule_code(self, tmp_path):
        report = _check(tmp_path, self.LEAF)
        assert report.errors == []
        (violation,) = report.violations
        assert violation.rule == "PUR001"
        assert "pkg.worker.run" in violation.message
        assert "WALL_CLOCK" in violation.message

    def test_violation_anchors_at_the_root_def(self, tmp_path):
        report = _check(tmp_path, self.LEAF)
        (violation,) = report.violations
        assert violation.path.endswith("pkg/worker.py")
        assert violation.line == 4  # `def run` after the import

    def test_witness_path_walks_every_hop(self, tmp_path):
        report = _check(tmp_path, self.LEAF)
        (violation,) = report.violations
        assert len(violation.witness) == 3
        first, second, third = violation.witness
        assert first.startswith("pkg.worker.run (")
        assert "calls pkg.mid.step" in first
        assert "pkg/worker.py:5" in first  # the call site line
        assert second.startswith("pkg.mid.step (")
        assert "calls pkg.leaf.tick" in second
        assert third.startswith("pkg.leaf.tick (")
        assert "`time.time` reads the host clock" in third
        assert "pkg/leaf.py:5" in third


class TestEffectKinds:
    """One positive and one negative fixture per effect kind, all
    reached through the same three-hop chain."""

    def _codes(self, tmp_path, leaf_body):
        report = _check(tmp_path, leaf_body)
        assert report.errors == []
        return sorted(v.rule for v in report.violations)

    def test_wall_clock(self, tmp_path):
        positive = """
            from datetime import datetime

            def tick(config):
                return datetime.now()
        """
        assert self._codes(tmp_path, positive) == ["PUR001"]

    def test_wall_clock_negative_explicit_timestamp(self, tmp_path):
        negative = """
            from datetime import datetime

            def tick(config):
                return datetime.fromtimestamp(config)
        """
        assert self._codes(tmp_path, negative) == []

    def test_unseeded_rng(self, tmp_path):
        positive = """
            import numpy as np

            def tick(config):
                return np.random.default_rng().random()
        """
        assert self._codes(tmp_path, positive) == ["PUR002"]

    def test_unseeded_rng_negative_seeded(self, tmp_path):
        negative = """
            import numpy as np

            def tick(config):
                return np.random.default_rng(config).random()
        """
        assert self._codes(tmp_path, negative) == []

    def test_global_mutation_subscript(self, tmp_path):
        positive = """
            CACHE = {}

            def tick(config):
                CACHE[config] = 1
                return CACHE
        """
        assert self._codes(tmp_path, positive) == ["PUR003"]

    def test_global_mutation_mutator_method(self, tmp_path):
        positive = """
            SEEN = []

            def tick(config):
                SEEN.append(config)
                return SEEN
        """
        assert self._codes(tmp_path, positive) == ["PUR003"]

    def test_global_mutation_rebind_via_global(self, tmp_path):
        positive = """
            COUNT = 0

            def tick(config):
                global COUNT
                COUNT = COUNT + 1
                return COUNT
        """
        assert self._codes(tmp_path, positive) == ["PUR003"]

    def test_global_mutation_negative_local_shadow(self, tmp_path):
        negative = """
            CACHE = {}

            def tick(config):
                CACHE = {}
                CACHE[config] = 1
                return CACHE
        """
        assert self._codes(tmp_path, negative) == []

    def test_env_read(self, tmp_path):
        positive = """
            import os

            def tick(config):
                return os.environ.get("HOME", config)
        """
        assert self._codes(tmp_path, positive) == ["PUR004"]

    def test_env_read_negative_os_path(self, tmp_path):
        negative = """
            import os

            def tick(config):
                return os.path.join("a", config)
        """
        assert self._codes(tmp_path, negative) == []

    def test_fs_write_open_mode(self, tmp_path):
        positive = """
            def tick(config):
                with open(config, "w") as handle:
                    handle.write("x")
        """
        assert self._codes(tmp_path, positive) == ["PUR005"]

    def test_fs_write_negative_read_mode(self, tmp_path):
        negative = """
            def tick(config):
                with open(config) as handle:
                    return handle.read()
        """
        assert self._codes(tmp_path, negative) == []

    def test_nondet_iteration(self, tmp_path):
        positive = """
            def tick(config):
                return [x for x in {1, 2, config}]
        """
        assert self._codes(tmp_path, positive) == ["PUR006"]

    def test_nondet_iteration_negative_sorted(self, tmp_path):
        negative = """
            def tick(config):
                return [x for x in sorted({1, 2, config})]
        """
        assert self._codes(tmp_path, negative) == []

    def test_multiple_effects_report_one_violation_each(self, tmp_path):
        leaf = """
            import os
            import time

            def tick(config):
                os.environ.get("HOME")
                return time.time()
        """
        assert self._codes(tmp_path, leaf) == ["PUR001", "PUR004"]


class TestAllowlist:
    LEAF = """
        CACHE = {}

        def tick(config):
            CACHE[config] = 1
            return CACHE
    """

    def _run(self, tmp_path, allowlist_text):
        _three_hop_package(tmp_path, self.LEAF)
        allowlist = tmp_path / "allow.txt"
        allowlist.write_text(textwrap.dedent(allowlist_text))
        return run_purity(
            [str(tmp_path)], roots=ROOT, allowlist_path=allowlist
        )

    def test_grant_kills_effect_at_boundary(self, tmp_path):
        report = self._run(
            tmp_path,
            "pkg.leaf.tick GLOBAL_MUTATION -- fixture memo, output invariant\n",
        )
        assert report.errors == []
        assert report.violations == []

    def test_grant_on_mid_hop_also_cleans_root(self, tmp_path):
        report = self._run(
            tmp_path,
            "pkg.mid.step GLOBAL_MUTATION -- fixture boundary grant\n",
        )
        assert report.violations == []

    def test_stale_grant_is_noq002(self, tmp_path):
        report = self._run(
            tmp_path,
            "pkg.leaf.tick GLOBAL_MUTATION -- real grant\n"
            "pkg.leaf.tick WALL_CLOCK -- stale: tick never reads the clock\n",
        )
        (violation,) = report.violations
        assert violation.rule == "NOQ002"
        assert "no longer has the WALL_CLOCK effect" in violation.message
        assert violation.line == 2

    def test_unknown_function_grant_is_noq002(self, tmp_path):
        report = self._run(
            tmp_path,
            "pkg.leaf.tick GLOBAL_MUTATION -- real grant\n"
            "pkg.gone.fn ENV_READ -- function was deleted\n",
        )
        (violation,) = report.violations
        assert violation.rule == "NOQ002"
        assert "no function named pkg.gone.fn" in violation.message

    def test_missing_justification_is_noq001(self, tmp_path):
        report = self._run(
            tmp_path, "pkg.leaf.tick GLOBAL_MUTATION\n"
        )
        codes = sorted(v.rule for v in report.violations)
        # The malformed grant does not fire, so the violation remains.
        assert codes == ["NOQ001", "PUR003"]

    def test_unknown_effect_is_noq001(self, tmp_path):
        report = self._run(
            tmp_path, "pkg.leaf.tick TELEPATHY -- not an effect\n"
        )
        codes = sorted(v.rule for v in report.violations)
        assert codes == ["NOQ001", "PUR003"]
        noq = next(v for v in report.violations if v.rule == "NOQ001")
        assert "WALL_CLOCK" in noq.message  # lists the legal effects

    def test_comments_and_blanks_ignored(self):
        entries, violations = parse_allowlist(
            "# header\n\npkg.f ENV_READ -- why\n", "allow.txt"
        )
        assert violations == []
        (entry,) = entries
        assert entry.qualname == "pkg.f"
        assert entry.line == 3


class TestRootHandling:
    def test_missing_root_is_an_error(self, tmp_path):
        _three_hop_package(
            tmp_path, "def tick(config):\n    return config\n"
        )
        report = run_purity(
            [str(tmp_path)],
            roots={"pkg.worker.no_such": "typo"},
            allowlist_path=_empty_allowlist(tmp_path),
        )
        assert report.exit_code == 2
        assert any("no_such" in message for _, message in report.errors)

    def test_clean_package_is_clean(self, tmp_path):
        _three_hop_package(
            tmp_path, "def tick(config):\n    return config * 2\n"
        )
        report = run_purity(
            [str(tmp_path)], roots=ROOT,
            allowlist_path=_empty_allowlist(tmp_path),
        )
        assert report.exit_code == 0
        assert report.violations == []


class TestRealTree:
    """The acceptance meta-test, mirroring the ``purity-lint`` CI job."""

    def test_src_has_no_unjustified_purity_violations(self):
        report = run_purity([str(REPO_ROOT / "src")])
        assert report.errors == []
        assert report.violations == [], "\n".join(
            v.format() for v in report.violations
        )

    def test_declared_roots_all_exist(self):
        # Guard against silent vacuity: every declared root resolves.
        from repro.devtools.callgraph import ProjectIndex

        index = ProjectIndex.build([str(REPO_ROOT / "src")])
        for qualname in PURITY_ROOTS:
            assert qualname in index.functions, qualname

    def test_in_repo_allowlist_parses_clean(self):
        path = default_allowlist_path()
        entries, violations = parse_allowlist(
            path.read_text(encoding="utf-8"), str(path)
        )
        assert violations == []
        assert entries  # the repo does rely on justified grants
