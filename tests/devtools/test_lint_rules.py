"""Per-rule fixtures: positive, negative, and noqa-suppressed snippets.

Each rule gets three kinds of evidence: code it must flag, close-by
code it must NOT flag, and a justified ``# repro: noqa`` suppression
it must honour.  Snippets are linted through the public
``lint_source`` with a fake path, which is how scope handling
(src vs tests) is exercised too.
"""

import textwrap

import pytest

from repro.devtools import lint_source

#: A path that makes snippets count as simulation source.
SRC = "src/repro/example.py"
#: A path that makes snippets count as test code.
TEST = "tests/test_example.py"


def codes(text, path=SRC):
    """The rule codes flagged in *text*, in report order."""
    return [v.rule for v in lint_source(textwrap.dedent(text), path)]


# --- DET001: global / unseeded RNG ----------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import random\n",
        "from random import shuffle\n",
        "import numpy as np\nx = np.random.rand(3)\n",
        "import numpy as np\nnp.random.seed(7)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "from numpy.random import default_rng\nrng = default_rng()\n",
        "import numpy\nnumpy.random.shuffle([1])\n",
    ],
)
def test_det001_flags_global_rng(snippet):
    assert "DET001" in codes(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        # Seeded construction and type references are the sanctioned idiom.
        "import numpy as np\nrng = np.random.default_rng(42)\n",
        "import numpy as np\ndef f(rng: np.random.Generator) -> None: ...\n",
        "import numpy as np\nrng = np.random.default_rng(seed=3)\n",
        # A local variable named `random` is not the stdlib module.
        "random = 3\nx = random\n",
    ],
)
def test_det001_allows_seeded_rng(snippet):
    assert "DET001" not in codes(snippet)


def test_det001_exempts_the_rng_module_itself():
    snippet = "import numpy as np\nrng = np.random.default_rng()\n"
    assert "DET001" not in codes(snippet, path="src/repro/util/rng.py")


def test_det001_does_not_apply_to_tests():
    assert "DET001" not in codes("import random\n", path=TEST)


# --- DET002: id() as key/token --------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "cache = {}\ncache[id(x)] = 1\n",
        "token = id(table)\n",
        "ok = id(a) == id(b)\n",
        "seen = set()\nseen.add(id(x))\n",
        "d = {id(x): 1}\n",
        "key = (id(a), 3)\n",
    ],
)
def test_det002_flags_id_tokens(snippet):
    assert "DET002" in codes(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        # Diagnostic printing of an id is not a token use.
        "print(f'object at {id(x):#x}')\n",
        # A user-defined id function is not the builtin.
        "row = table.id(3)\n",
    ],
)
def test_det002_allows_diagnostic_id(snippet):
    assert "DET002" not in codes(snippet)


def test_det002_applies_to_tests_too():
    assert "DET002" in codes("token = id(x)\n", path=TEST)


# --- DET003: wall-clock reads ---------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nnow = time.time()\n",
        "import time\nstamp = time.monotonic()\n",
        "import time\ntick = time.perf_counter\n",  # reference, not call
        "from datetime import datetime\nd = datetime.now()\n",
        "import datetime\nd = datetime.datetime.utcnow()\n",
    ],
)
def test_det003_flags_wall_clock(snippet):
    assert "DET003" in codes(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        # Constructing a fixed datetime is how the repo derives epochs.
        "import datetime as dt\n"
        "d = dt.datetime(2015, 11, 30, tzinfo=dt.timezone.utc)\n",
        "import time\nzone = time.timezone\n",
        "import datetime\nd = datetime.datetime.strptime(s, '%Y-%m-%d')\n",
    ],
)
def test_det003_allows_fixed_times(snippet):
    assert "DET003" not in codes(snippet)


def test_det003_does_not_apply_to_tests():
    snippet = "import time\nnow = time.time()\n"
    assert "DET003" not in codes(snippet, path=TEST)


# --- DET004: bare set iteration -------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "for x in {1, 2, 3}:\n    pass\n",
        "vals = list(set(items))\n",
        "vals = tuple(frozenset(items))\n",
        "out = [f(x) for x in set(items)]\n",
        "text = ','.join({str(x) for x in items})\n",
        "for i, x in enumerate(set(items)):\n    pass\n",
    ],
)
def test_det004_flags_bare_set_iteration(snippet):
    assert "DET004" in codes(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        "vals = sorted(set(items))\n",
        "for x in sorted({1, 2, 3}):\n    pass\n",
        "n = len(set(items))\n",
        "present = x in set(items)\n",
        "union = set(a) | set(b)\n",
    ],
)
def test_det004_allows_sorted_or_unordered_use(snippet):
    assert "DET004" not in codes(snippet)


# --- COR001: mutable default arguments ------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(a, acc=[]):\n    pass\n",
        "def f(a, table={}):\n    pass\n",
        "def f(a, seen=set()):\n    pass\n",
        "def f(a, *, acc=list()):\n    pass\n",
        "g = lambda a, acc=[]: acc\n",
    ],
)
def test_cor001_flags_mutable_defaults(snippet):
    assert "COR001" in codes(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(a, acc=None):\n    pass\n",
        "def f(a, acc=()):\n    pass\n",
        "def f(a, name=''):\n    pass\n",
        "from dataclasses import field\n"
        "def f(a, acc=field(default_factory=list)):\n    pass\n",
    ],
)
def test_cor001_allows_immutable_defaults(snippet):
    assert "COR001" not in codes(snippet)


def test_cor001_applies_to_tests_too():
    assert "COR001" in codes("def f(acc=[]):\n    pass\n", path=TEST)


# --- COR002: float equality -----------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "ok = x == 1.5\n",
        "ok = 0.1 != y\n",
        "ok = x == -2.5\n",
        "ok = a < b == 0.5\n",
    ],
)
def test_cor002_flags_float_equality(snippet):
    assert "COR002" in codes(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        "ok = x == 1\n",          # int literal: exact by construction
        "ok = x >= 1.5\n",        # ordering comparison
        "ok = x == y\n",          # no literal involved
        "import math\nok = math.isclose(x, 1.5)\n",
    ],
)
def test_cor002_allows_tolerant_comparisons(snippet):
    assert "COR002" not in codes(snippet)


def test_cor002_does_not_apply_to_tests():
    assert "COR002" not in codes("assert x == 1.5\n", path=TEST)


# --- Suppressions ----------------------------------------------------------


def test_justified_noqa_suppresses():
    snippet = (
        "import numpy as np\n"
        "rng = np.random.default_rng()"
        "  # repro: noqa DET001 -- fixture demo, result discarded\n"
    )
    assert codes(snippet) == []


def test_noqa_only_covers_listed_codes():
    snippet = (
        "token = id(x)  # repro: noqa DET001 -- wrong code listed\n"
    )
    flagged = codes(snippet)
    assert "DET002" in flagged          # violation survives
    assert "NOQ002" in flagged          # and the suppression is stale


def test_unjustified_noqa_is_flagged():
    snippet = "token = id(x)  # repro: noqa DET002\n"
    flagged = codes(snippet)
    assert "NOQ001" in flagged
    assert "DET002" in flagged          # unjustified noqa silences nothing


def test_unused_noqa_is_flagged():
    snippet = "x = 1  # repro: noqa DET001 -- stale justification\n"
    assert codes(snippet) == ["NOQ002"]


def test_noqa_inside_string_literal_is_ignored():
    snippet = "s = '# repro: noqa DET001 -- not a comment'\n"
    assert codes(snippet) == []


def test_multiple_codes_one_comment():
    snippet = (
        "import time\n"
        "now = time.time() == 1.5"
        "  # repro: noqa DET003,COR002 -- fixture exercising both rules\n"
    )
    assert codes(snippet) == []
