"""The runtime sanitizer (``REPRO_SANITIZE=1``).

Three properties are load-bearing:

* the sanitizer is *observational* -- a sanitized run is bit-identical
  to a plain one;
* frozen arrays make an injected in-place write raise ``ValueError``
  at the mutation site (instead of silently corrupting sibling cells);
* per-stream draw counters are identical between ``jobs=1`` and
  ``jobs=N``, proving no RNG stream leaks across cells or processes.
"""

import numpy as np
import pytest

from repro import ScenarioConfig
from repro.devtools import sanitize
from repro.devtools.sanitize import (
    STREAM_DRAWS,
    counting_generator,
    freeze_array,
    reset_streams,
    stream_report,
)
from repro.netsim import ASGraph, AsNode, AsRole, Relationship
from repro.scenario import diff_arrays, result_arrays
from repro.scenario.engine import build_substrate, simulate
from repro.sweep import SweepSpec, run_sweep
from repro.util import Location


@pytest.fixture
def tiny_config():
    return ScenarioConfig(
        seed=7, n_stubs=50, n_vps=30, letters=("A", "K"), include_nl=False
    )


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    reset_streams()
    yield
    reset_streams()


class TestCountingGenerator:
    def test_draw_values_are_bit_identical(self):
        wrapped = counting_generator(np.random.default_rng(123), "t")
        bare = np.random.default_rng(123)
        assert np.array_equal(wrapped.normal(size=16), bare.normal(size=16))
        assert np.array_equal(
            wrapped.integers(0, 100, size=16),
            bare.integers(0, 100, size=16),
        )
        assert np.array_equal(
            wrapped.permutation(10), bare.permutation(10)
        )

    def test_counts_calls_per_label(self):
        reset_streams()
        try:
            generator = counting_generator(
                np.random.default_rng(1), "atlas.vps"
            )
            generator.random()
            generator.normal(size=1000)  # one call, whatever the size
            generator.integers(0, 5)
            assert STREAM_DRAWS == {"atlas.vps": 3}
        finally:
            reset_streams()

    def test_non_draw_attributes_pass_through_uncounted(self):
        reset_streams()
        try:
            base = np.random.default_rng(1)
            generator = counting_generator(base, "t")
            assert generator.bit_generator is base.bit_generator
            assert STREAM_DRAWS == {}
        finally:
            reset_streams()

    def test_stream_report_is_label_sorted(self):
        reset_streams()
        try:
            counting_generator(np.random.default_rng(1), "zeta").random()
            counting_generator(np.random.default_rng(2), "alpha").random()
            assert list(stream_report()) == ["alpha", "zeta"]
        finally:
            reset_streams()


class TestFreezing:
    def test_freeze_array_is_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        array = np.zeros(4)
        freeze_array(array)
        array[0] = 1.0  # still writable

    def test_freeze_array_locks_when_enabled(self, sanitized):
        array = np.zeros(4)
        freeze_array(array)
        with pytest.raises(ValueError):
            array[0] = 1.0

    def test_substrate_constants_are_frozen(self, sanitized, tiny_config):
        substrate = build_substrate(tiny_config)
        with pytest.raises(ValueError):
            substrate.vps.lats[0] = 0.0
        with pytest.raises(ValueError):
            substrate.botnet.weights[0] = 0.5
        deployment = substrate.deployments[tiny_config.letters[0]]
        with pytest.raises(ValueError):
            deployment.capacity_vector[0] = 1e9

    def test_injected_write_to_compiled_graph_array_raises(self, sanitized):
        # CompiledGraph CSR views are read-only by construction; the
        # sanitizer's contract is that an injected in-place write dies
        # at the site with ValueError rather than corrupting routing.
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(
                AsNode(asn=asn, location=Location(0.0, 0.0), role=AsRole.STUB)
            )
        graph.add_link(1, 2, Relationship.PROVIDER)
        graph.add_link(2, 3, Relationship.PEER)
        compiled = graph.compiled()
        with pytest.raises(ValueError):
            compiled.provider_indices[0] = 99
        with pytest.raises(ValueError):
            compiled.asn_of[0] = 99

    def test_sanitized_simulate_is_bit_identical(
        self, monkeypatch, tiny_config
    ):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = result_arrays(simulate(tiny_config))
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        reset_streams()
        try:
            checked = result_arrays(simulate(tiny_config))
        finally:
            reset_streams()
        assert diff_arrays(plain, checked) == []


class TestDrawParity:
    """jobs=1 and jobs=2 must perform exactly the same per-cell draws."""

    def _spec(self, tiny_config):
        return SweepSpec.from_points(tiny_config, [{}], replicates=2)

    def test_stream_draw_counters_match_across_jobs(
        self, sanitized, tiny_config
    ):
        serial = run_sweep(self._spec(tiny_config), jobs=1)
        parallel = run_sweep(self._spec(tiny_config), jobs=2)

        serial_streams = {
            name: count
            for name, count in serial.routing_stats.items()
            if name.startswith("sanitize/stream/")
        }
        parallel_streams = {
            name: count
            for name, count in parallel.routing_stats.items()
            if name.startswith("sanitize/stream/")
        }
        assert serial_streams  # the counters actually flowed through
        assert serial_streams == parallel_streams

    def test_results_stay_bit_identical_under_sanitizer(
        self, sanitized, tiny_config
    ):
        serial = run_sweep(self._spec(tiny_config), jobs=1)
        parallel = run_sweep(self._spec(tiny_config), jobs=2)
        for a, b in zip(serial.results, parallel.results):
            assert not diff_arrays(result_arrays(a), result_arrays(b))


def test_enabled_tracks_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert sanitize.enabled() is False
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize.enabled() is True
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert sanitize.enabled() is False
