"""Unit tests for the project index: module naming, symbol
collection, call resolution strategies, and SCC condensation."""

import textwrap
from pathlib import Path

from repro.devtools.callgraph import ProjectIndex, module_name_for


def _build(tmp_path, files):
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return ProjectIndex.build([str(tmp_path)])


def _callees(index, qualname):
    return sorted({edge.callee for edge in index.callees_of(qualname)})


class TestModuleNaming:
    def test_package_walk(self, tmp_path):
        (tmp_path / "pkg" / "sub").mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        target = tmp_path / "pkg" / "sub" / "mod.py"
        target.write_text("")
        assert module_name_for(target) == ("pkg.sub.mod", False)
        init = tmp_path / "pkg" / "sub" / "__init__.py"
        assert module_name_for(init) == ("pkg.sub", True)

    def test_standalone_file_is_its_stem(self, tmp_path):
        target = tmp_path / "script.py"
        target.write_text("")
        assert module_name_for(target) == ("script", False)


class TestCallResolution:
    def test_module_local_and_imported_calls(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """
                    def helper():
                        return 1

                    def entry():
                        return helper()
                """,
                "pkg/b.py": """
                    from .a import helper
                    from . import a

                    def direct():
                        return helper()

                    def dotted():
                        return a.entry()
                """,
            },
        )
        assert _callees(index, "pkg.a.entry") == ["pkg.a.helper"]
        assert _callees(index, "pkg.b.direct") == ["pkg.a.helper"]
        assert _callees(index, "pkg.b.dotted") == ["pkg.a.entry"]

    def test_constructor_links_to_init_and_typed_receiver(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/model.py": """
                    class Engine:
                        def __init__(self):
                            self.state = 0

                        def step(self):
                            return self.state
                """,
                "pkg/use.py": """
                    from .model import Engine

                    def drive():
                        engine = Engine()
                        return engine.step()

                    def drive_param(engine: Engine):
                        return engine.step()
                """,
            },
        )
        assert _callees(index, "pkg.use.drive") == [
            "pkg.model.Engine.__init__",
            "pkg.model.Engine.step",
        ]
        assert _callees(index, "pkg.use.drive_param") == [
            "pkg.model.Engine.step"
        ]

    def test_self_method_and_attr_type(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/parts.py": """
                    class Gauge:
                        def read(self):
                            return 0
                """,
                "pkg/machine.py": """
                    from .parts import Gauge

                    class Machine:
                        def __init__(self):
                            self.gauge = Gauge()

                        def helper(self):
                            return 1

                        def run(self):
                            return self.helper() + self.gauge.read()
                """,
            },
        )
        assert _callees(index, "pkg.machine.Machine.run") == [
            "pkg.machine.Machine.helper",
            "pkg.parts.Gauge.read",
        ]

    def test_return_annotation_resolves_receiver(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/factory.py": """
                    class Widget:
                        def spin(self):
                            return 1

                    def make() -> Widget:
                        return Widget()

                    def use():
                        return make().spin()
                """,
            },
        )
        assert "pkg.factory.Widget.spin" in _callees(
            index, "pkg.factory.use"
        )

    def test_unique_method_fallback_but_not_ambient(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/only.py": """
                    class Solo:
                        def distinctive_probe(self):
                            return 1

                        def get(self, key):
                            return key
                """,
                "pkg/use.py": """
                    def call(thing, mapping):
                        # untyped receiver: resolved because exactly one
                        # project class defines distinctive_probe...
                        thing.distinctive_probe()
                        # ...but .get() is container-ambient, never
                        # name-matched.
                        return mapping.get("k")
                """,
            },
        )
        assert _callees(index, "pkg.use.call") == [
            "pkg.only.Solo.distinctive_probe"
        ]

    def test_inherited_method_resolves_through_base(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/base.py": """
                    class Base:
                        def shared(self):
                            return 0
                """,
                "pkg/child.py": """
                    from .base import Base

                    class Child(Base):
                        def run(self):
                            return self.shared()
                """,
            },
        )
        assert _callees(index, "pkg.child.Child.run") == [
            "pkg.base.Base.shared"
        ]


class TestSccs:
    def test_recursion_cycle_is_one_component(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/rec.py": """
                    def even(n):
                        return True if n == 0 else odd(n - 1)

                    def odd(n):
                        return False if n == 0 else even(n - 1)

                    def top(n):
                        return even(n)
                """,
            },
        )
        components = index.sccs()
        cycle = next(c for c in components if len(c) > 1)
        assert cycle == ["pkg.rec.even", "pkg.rec.odd"]
        # Reverse topological: the cycle (callee) precedes the caller.
        assert components.index(cycle) < components.index(["pkg.rec.top"])

    def test_every_function_appears_exactly_once(self, tmp_path):
        index = _build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": """
                    def a():
                        return b()

                    def b():
                        return 1
                """,
            },
        )
        flattened = [q for component in index.sccs() for q in component]
        assert sorted(flattened) == sorted(index.functions)
        assert len(flattened) == len(set(flattened))


class TestErrors:
    def test_syntax_error_is_recorded_not_raised(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        index = ProjectIndex.build([str(tmp_path)])
        assert len(index.errors) == 1
        path, message = index.errors[0]
        assert path.endswith("bad.py")
        assert "syntax error" in message


def test_real_tree_indexes_and_links():
    repo_src = Path(__file__).resolve().parent.parent.parent / "src"
    index = ProjectIndex.build([str(repo_src)])
    assert index.errors == []
    assert len(index.modules) > 80
    # Spot-check a known cross-package edge: the sweep worker calls
    # the scenario engine.
    assert "repro.scenario.engine.simulate" in _callees(
        index, "repro.sweep.worker._run_cell"
    )
