"""Framework behaviour and the meta-test: the real tree lints clean.

The meta-test is the point of the whole exercise -- every determinism
invariant the DET/COR rules encode must actually hold on ``src/``.
If it fails, either new code broke an invariant (fix the code) or a
rule misfires (fix the rule); both are PR blockers, matching the
``lint-repro`` CI job.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import all_rules, lint_paths, lint_source
from repro.devtools.lint import main
from repro.devtools.report import render_json, render_text
from repro.devtools.runner import iter_python_files

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_src_tree_is_clean():
    report = lint_paths([str(REPO_ROOT / "src")])
    assert report.errors == []
    assert report.violations == [], "\n".join(
        v.format() for v in report.violations
    )
    assert report.checked_files > 80  # the whole package, not a subset


def test_tests_tree_is_clean():
    report = lint_paths([str(REPO_ROOT / "tests")])
    assert report.errors == []
    assert report.violations == [], "\n".join(
        v.format() for v in report.violations
    )


def test_scripts_and_benchmarks_trees_are_clean():
    # The harness/bench surface is linted by CI too ("other" scope:
    # wall-clock reads are fine there, COR/DET002 rules still apply).
    report = lint_paths(
        [str(REPO_ROOT / "scripts"), str(REPO_ROOT / "benchmarks")]
    )
    assert report.errors == []
    assert report.violations == [], "\n".join(
        v.format() for v in report.violations
    )
    assert report.checked_files > 30


def test_parallel_lint_matches_serial():
    target = str(REPO_ROOT / "src" / "repro" / "devtools")
    serial = lint_paths([target])
    parallel = lint_paths([target], jobs=2)
    assert parallel.violations == serial.violations
    assert parallel.errors == serial.errors
    assert parallel.checked_files == serial.checked_files


def test_rule_timings_are_collected():
    report = lint_paths([str(REPO_ROOT / "src" / "repro" / "util")])
    assert set(report.rule_timings) == {
        r.code for r in all_rules()
    }
    assert all(t >= 0.0 for t in report.rule_timings.values())


def test_every_rule_is_registered():
    rule_codes = [r.code for r in all_rules()]
    assert rule_codes == sorted(rule_codes)
    for expected in ("DET001", "DET002", "DET003", "DET004", "COR001", "COR002"):
        assert expected in rule_codes
    for rule in all_rules():
        assert rule.summary, rule.code
        assert rule.rationale, rule.code


def test_violation_format_is_file_line_col_rule():
    violations = lint_source(
        "token = id(x)\n", "src/repro/example.py"
    )
    assert len(violations) == 1
    line = violations[0].format()
    assert line.startswith("src/repro/example.py:1:9: DET002 ")


def test_exit_code_contract(tmp_path):
    clean = tmp_path / "src" / "repro" / "clean.py"
    clean.parent.mkdir(parents=True)
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0

    dirty = clean.with_name("dirty.py")
    dirty.write_text("token = id(x)\n")
    assert main([str(dirty)]) == 1

    unparseable = clean.with_name("broken.py")
    unparseable.write_text("def f(:\n")
    assert main([str(unparseable)]) == 2

    assert main([str(tmp_path / "no-such-dir")]) == 2


def test_json_report_shape(tmp_path):
    target = tmp_path / "src" / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("token = id(x)\n")
    report = lint_paths([str(target)])
    payload = json.loads(render_json(report))
    assert payload["exit_code"] == 1
    assert payload["checked_files"] == 1
    (violation,) = payload["violations"]
    assert violation["rule"] == "DET002"
    assert violation["line"] == 1

    text = render_text(report)
    assert "DET002" in text
    assert "1 violation(s)" in text


def test_module_entry_point_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": ""},
    )
    assert result.returncode == 0
    assert "DET001" in result.stdout


def test_file_discovery_skips_pycache(tmp_path):
    (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x=1\n")
    (tmp_path / "pkg" / "real.py").write_text("x = 1\n")
    found = iter_python_files([str(tmp_path)])
    assert [p.name for p in found] == ["real.py"]


@pytest.mark.parametrize(
    "path,expected",
    [
        ("src/repro/core/binning.py", "src"),
        ("tests/core/test_binning.py", "tests"),
        ("tests/conftest.py", "tests"),
        ("scripts/bench_report.py", "other"),
    ],
)
def test_scope_classification(path, expected):
    from repro.devtools.registry import classify_scope

    assert classify_scope(path) == expected
