"""The reporter contract: JSON schema, exit codes, witness-path
rendering for PUR rules, and the per-rule timing table."""

import json

from repro.devtools.registry import Violation
from repro.devtools.report import render_json, render_text, render_timings
from repro.devtools.runner import LintReport


def _violation(**overrides):
    fields = {
        "path": "src/repro/mod.py",
        "line": 7,
        "col": 3,
        "rule": "DET001",
        "message": "unseeded randomness",
    }
    fields.update(overrides)
    return Violation(**fields)


class TestJsonSchema:
    def test_payload_keys_and_types(self):
        report = LintReport(
            violations=[_violation()],
            errors=[("bad.py", "syntax error at line 1: oops")],
            checked_files=3,
        )
        payload = json.loads(render_json(report))
        assert set(payload) == {
            "checked_files", "violations", "errors", "exit_code",
        }
        assert payload["checked_files"] == 3
        (violation,) = payload["violations"]
        assert violation == {
            "path": "src/repro/mod.py",
            "line": 7,
            "col": 3,
            "rule": "DET001",
            "message": "unseeded randomness",
        }
        (error,) = payload["errors"]
        assert error == {
            "path": "bad.py",
            "message": "syntax error at line 1: oops",
        }

    def test_witness_serialises_as_list(self):
        report = LintReport(
            violations=[
                _violation(
                    rule="PUR001",
                    witness=("a (f.py:1) calls b", "b (g.py:2): reads clock"),
                )
            ],
            checked_files=1,
        )
        (violation,) = json.loads(render_json(report))["violations"]
        assert violation["witness"] == [
            "a (f.py:1) calls b",
            "b (g.py:2): reads clock",
        ]

    def test_witness_key_absent_for_per_file_rules(self):
        report = LintReport(violations=[_violation()], checked_files=1)
        (violation,) = json.loads(render_json(report))["violations"]
        assert "witness" not in violation

    def test_rule_timings_included_when_collected(self):
        report = LintReport(
            checked_files=1, rule_timings={"DET001": 0.25, "COR001": 0.5}
        )
        payload = json.loads(render_json(report))
        assert payload["rule_timings"] == {"DET001": 0.25, "COR001": 0.5}


class TestExitCodeContract:
    def test_clean_is_zero(self):
        report = LintReport(checked_files=5)
        assert report.exit_code == 0
        assert json.loads(render_json(report))["exit_code"] == 0

    def test_violations_are_one(self):
        report = LintReport(violations=[_violation()], checked_files=5)
        assert report.exit_code == 1

    def test_errors_are_two_and_beat_violations(self):
        report = LintReport(
            violations=[_violation()],
            errors=[("bad.py", "boom")],
            checked_files=5,
        )
        assert report.exit_code == 2


class TestTextRendering:
    def test_first_line_is_grep_friendly(self):
        line = _violation().format().splitlines()[0]
        assert line == (
            "src/repro/mod.py:7:3: DET001 unseeded randomness"
        )

    def test_witness_hops_render_indented(self):
        violation = _violation(
            rule="PUR001",
            message="root reaches WALL_CLOCK",
            witness=("a (f.py:1) calls b", "b (g.py:2): reads clock"),
        )
        report = LintReport(violations=[violation], checked_files=1)
        text = render_text(report)
        lines = text.splitlines()
        assert lines[0].startswith("src/repro/mod.py:7:3: PUR001 ")
        assert lines[1] == "    a (f.py:1) calls b"
        assert lines[2] == "    b (g.py:2): reads clock"
        assert "1 violation(s)" in text

    def test_clean_report_says_so(self):
        text = render_text(LintReport(checked_files=4))
        assert "4 file(s) clean" in text


class TestTimingTable:
    def test_sorted_slowest_first_with_total(self):
        report = LintReport(
            rule_timings={"DET001": 0.1, "COR001": 0.3}
        )
        lines = render_timings(report).splitlines()
        assert lines[0].startswith("rule")
        assert lines[1].startswith("COR001")
        assert lines[2].startswith("DET001")
        assert lines[3].startswith("total")
        assert "0.4000" in lines[3]

    def test_empty_timings(self):
        assert "no per-rule timing" in render_timings(LintReport())
