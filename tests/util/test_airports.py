"""Tests for the airport table backing site placement."""

import pytest

from repro.util import AIRPORTS, airport, codes_in_region
from repro.util.airports import REGIONS, Airport
from repro.util.geo import Location

# Every site code named in the paper's figures must be placeable.
PAPER_E_SITES = [
    "AMS", "FRA", "LHR", "ARC", "CDG", "VIE", "QPG", "ORD", "KBP", "ZRH",
    "IAD", "PAO", "WAW", "ATL", "BER", "SYD", "SEA", "NLV", "MIA", "NRT",
    "TRN", "AKL", "MAN", "BUR", "LGA", "PER", "SNA", "LBA", "SIN", "DXB",
    "KGL", "LAD",
]
PAPER_K_SITES = [
    "AMS", "LHR", "FRA", "MIA", "VIE", "LED", "NRT", "MIL", "ZRH", "WAW",
    "BNE", "PRG", "GVA", "ATH", "MKC", "RIX", "THR", "BUD", "KAE", "BEG",
    "HEL", "PLX", "OVB", "POZ", "ABO", "AVN", "BCN", "REY", "DOH", "RNO",
    "DEL",
]


class TestTable:
    def test_all_paper_sites_present(self):
        for code in PAPER_E_SITES + PAPER_K_SITES:
            assert code in AIRPORTS, f"missing paper site code {code}"

    def test_h_root_sites_present(self):
        # H-Root: "north of Baltimore" and San Diego (section 3.2.1).
        assert "BWI" in AIRPORTS
        assert "SAN" in AIRPORTS

    def test_table_is_large_enough_for_l_root(self):
        # L-Root has 113 observed sites (Table 2); sites within one
        # letter need distinct codes.
        assert len(AIRPORTS) >= 113

    def test_every_region_populated(self):
        for region in REGIONS:
            assert codes_in_region(region), f"region {region} empty"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            airport("ZZZ")

    def test_codes_in_region_rejects_unknown(self):
        with pytest.raises(ValueError):
            codes_in_region("ANTARCTICA")

    def test_europe_is_well_represented(self):
        # The Atlas VP population is Europe-biased; the table must give
        # the sampler plenty of European anchors.
        assert len(codes_in_region("EU")) >= 30


class TestAirportValidation:
    def test_rejects_lowercase_code(self):
        with pytest.raises(ValueError):
            Airport("ams", "Amsterdam", Location(52.3, 4.8), "EU")

    def test_rejects_bad_region(self):
        with pytest.raises(ValueError):
            Airport("AMS", "Amsterdam", Location(52.3, 4.8), "XX")

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Airport("AMST", "Amsterdam", Location(52.3, 4.8), "EU")
