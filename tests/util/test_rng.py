"""Tests for the per-component RNG discipline."""

import pytest

from repro.util import RngFactory, component_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "atlas") == derive_seed(42, "atlas")

    def test_label_changes_seed(self):
        assert derive_seed(42, "atlas") != derive_seed(42, "attack")

    def test_root_seed_changes_seed(self):
        assert derive_seed(1, "atlas") != derive_seed(2, "atlas")

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            derive_seed(-1, "atlas")


class TestComponentRng:
    def test_streams_reproducible(self):
        a = component_rng(7, "x").random(5)
        b = component_rng(7, "x").random(5)
        assert (a == b).all()

    def test_streams_independent(self):
        a = component_rng(7, "x").random(5)
        b = component_rng(7, "y").random(5)
        assert (a != b).any()


class TestRngFactory:
    def test_rejects_duplicate_label(self):
        factory = RngFactory(seed=3)
        factory.get("atlas.probes")
        with pytest.raises(ValueError):
            factory.get("atlas.probes")

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            RngFactory(seed=-5)

    def test_matches_component_rng(self):
        factory = RngFactory(seed=11)
        assert (
            factory.get("a").random(3) == component_rng(11, "a").random(3)
        ).all()
