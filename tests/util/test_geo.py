"""Tests for geographic distance and the RTT model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    Location,
    airport,
    haversine_km,
    haversine_km_vec,
    propagation_rtt_ms,
    propagation_rtt_ms_vec,
    rtt_between,
)

_coords = st.tuples(
    st.floats(min_value=-90, max_value=90),
    st.floats(min_value=-180, max_value=180),
).map(lambda t: Location(*t))


class TestLocation:
    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            Location(91, 0)

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValueError):
            Location(0, -181)


class TestHaversine:
    def test_zero_distance(self):
        here = Location(52.3, 4.8)
        assert haversine_km(here, here) == 0.0

    def test_known_distance_ams_lhr(self):
        # Amsterdam to London is ~360 km.
        dist = haversine_km(airport("AMS").location, airport("LHR").location)
        assert 320 < dist < 420

    def test_antipodal_distance(self):
        dist = haversine_km(Location(0, 0), Location(0, 180))
        assert dist == pytest.approx(np.pi * 6371.0, rel=1e-6)

    def test_vectorised_matches_scalar(self):
        a = airport("AMS").location
        codes = ["LHR", "NRT", "SYD", "MIA"]
        lats = np.array([airport(c).location.lat for c in codes])
        lons = np.array([airport(c).location.lon for c in codes])
        vec = haversine_km_vec(a.lat, a.lon, lats, lons)
        for i, code in enumerate(codes):
            assert vec[i] == pytest.approx(
                haversine_km(a, airport(code).location)
            )

    @given(a=_coords, b=_coords)
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    @given(a=_coords, b=_coords)
    def test_bounded_by_half_circumference(self, a, b):
        assert 0 <= haversine_km(a, b) <= np.pi * 6371.0 + 1e-6


class TestRttModel:
    def test_rtt_has_floor(self):
        assert propagation_rtt_ms(0.0) == pytest.approx(8.0)

    def test_rtt_monotone_in_distance(self):
        assert propagation_rtt_ms(100) < propagation_rtt_ms(5000)

    def test_transatlantic_rtt_plausible(self):
        # Europe to US east coast should be ~80-120 ms in this model.
        rtt = rtt_between(airport("AMS").location, airport("IAD").location)
        assert 70 < rtt < 130

    def test_europe_to_us_west_exceeds_us_east(self):
        # The Fig. 4 signature: H-Root's shift from Baltimore to San
        # Diego raises RTT as seen from (mostly-European) VPs.
        ams = airport("AMS").location
        east = rtt_between(ams, airport("BWI").location)
        west = rtt_between(ams, airport("SAN").location)
        assert west > east + 30

    def test_vectorised_matches_scalar(self):
        dists = np.array([0.0, 100.0, 4000.0])
        vec = propagation_rtt_ms_vec(dists)
        for i, d in enumerate(dists):
            assert vec[i] == pytest.approx(propagation_rtt_ms(d))
