"""Tests for the time grid and event-window constants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    EVENT_1,
    EVENT_2,
    EVENT_WINDOW_SECONDS,
    EVENT_WINDOW_START,
    Interval,
    TimeGrid,
    utc,
)


class TestEventConstants:
    def test_window_starts_nov_30(self):
        assert EVENT_WINDOW_START == utc(2015, 11, 30)

    def test_first_event_is_160_minutes(self):
        assert EVENT_1.seconds == 160 * 60

    def test_second_event_is_60_minutes(self):
        assert EVENT_2.seconds == 60 * 60

    def test_events_fall_inside_window(self):
        window = Interval(
            EVENT_WINDOW_START, EVENT_WINDOW_START + EVENT_WINDOW_SECONDS
        )
        for event in (EVENT_1, EVENT_2):
            assert window.contains(event.start)
            assert window.contains(event.end - 1)

    def test_event_hours_match_paper_figures(self):
        # Figures 5-11 place events at ~hour 7 and ~hour 29.
        start1, _ = EVENT_1.hours_after(EVENT_WINDOW_START)
        start2, _ = EVENT_2.hours_after(EVENT_WINDOW_START)
        assert start1 == pytest.approx(6.833, abs=0.01)
        assert start2 == pytest.approx(29.167, abs=0.01)


class TestInterval:
    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Interval(10, 5)

    def test_contains_is_half_open(self):
        interval = Interval(0, 10)
        assert interval.contains(0)
        assert interval.contains(9.999)
        assert not interval.contains(10)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(9, 20))
        assert not Interval(0, 10).overlaps(Interval(10, 20))
        assert Interval(5, 6).overlaps(Interval(0, 100))


class TestTimeGrid:
    def test_paper_window_has_288_ten_minute_bins(self):
        grid = TimeGrid.paper_window()
        assert grid.n_bins == 288
        assert grid.bin_seconds == 600

    def test_paper_window_rejects_nontiling_bins(self):
        with pytest.raises(ValueError):
            TimeGrid.paper_window(bin_seconds=7 * 60)

    def test_bin_index_boundaries(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=3)
        assert grid.bin_index(0) == 0
        assert grid.bin_index(599.9) == 0
        assert grid.bin_index(600) == 1
        assert grid.bin_index(1799) == 2

    def test_bin_index_rejects_out_of_grid(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=3)
        with pytest.raises(ValueError):
            grid.bin_index(-1)
        with pytest.raises(ValueError):
            grid.bin_index(1800)

    def test_bin_indices_vectorised_matches_scalar(self):
        grid = TimeGrid(start=100, bin_seconds=60, n_bins=10)
        times = np.array([100, 159, 160, 699])
        expected = [grid.bin_index(t) for t in times]
        assert grid.bin_indices(times).tolist() == expected

    def test_bin_interval_roundtrip(self):
        grid = TimeGrid(start=50, bin_seconds=600, n_bins=5)
        for i in range(grid.n_bins):
            interval = grid.bin_interval(i)
            assert grid.bin_index(interval.start) == i
            assert grid.bin_index(interval.end - 1) == i

    def test_bin_interval_rejects_bad_index(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=5)
        with pytest.raises(IndexError):
            grid.bin_interval(5)
        with pytest.raises(IndexError):
            grid.bin_start(-1)

    def test_hours_axis(self):
        grid = TimeGrid(start=0, bin_seconds=3600, n_bins=4)
        assert grid.hours().tolist() == [0.5, 1.5, 2.5, 3.5]

    def test_bins_overlapping_partial(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=10)
        bins = grid.bins_overlapping(Interval(550, 1250))
        assert bins.tolist() == [0, 1, 2]

    def test_bins_overlapping_empty_outside(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=2)
        assert grid.bins_overlapping(Interval(5000, 6000)).size == 0

    def test_event_mask_covers_events(self):
        grid = TimeGrid.paper_window()
        mask = grid.event_mask()
        assert mask[grid.bin_index(EVENT_1.start)]
        assert mask[grid.bin_index(EVENT_2.start)]
        assert mask.sum() == pytest.approx((160 + 60) / 10, abs=2)
        # Bin at hour 20 is quiet.
        assert not mask[120]

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeGrid(start=0, bin_seconds=0, n_bins=1)
        with pytest.raises(ValueError):
            TimeGrid(start=0, bin_seconds=60, n_bins=0)

    @given(
        start=st.integers(min_value=0, max_value=10**9),
        bin_seconds=st.integers(min_value=1, max_value=7200),
        n_bins=st.integers(min_value=1, max_value=500),
        fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    def test_bin_index_within_range_property(
        self, start, bin_seconds, n_bins, fraction
    ):
        grid = TimeGrid(start=start, bin_seconds=bin_seconds, n_bins=n_bins)
        # Guard against float rounding pushing the product up to the end
        # of the grid (the interval is half-open).
        timestamp = min(start + fraction * grid.seconds,
                        np.nextafter(float(grid.end), -np.inf))
        index = grid.bin_index(timestamp)
        assert 0 <= index < n_bins
        assert grid.bin_interval(index).contains(timestamp)
