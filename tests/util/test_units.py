"""Tests for traffic unit conversions against the paper's numbers."""

import pytest

from repro.util import (
    EVENT_QUERY_WIRE_BYTES_NOV30,
    EVENT_RESPONSE_WIRE_BYTES,
    gbps,
    mqps,
    qps_from_mqps,
    wire_bytes,
)


class TestConversions:
    def test_mqps_roundtrip(self):
        assert qps_from_mqps(mqps(5_120_000)) == pytest.approx(5_120_000)

    def test_wire_bytes_adds_headers(self):
        # Section 3.1: 44/45-byte payloads + 40 bytes of headers give
        # the confirmed 84/85-byte query packets.
        assert wire_bytes(44) == EVENT_QUERY_WIRE_BYTES_NOV30

    def test_wire_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            wire_bytes(-1)

    def test_gbps_rejects_negative_size(self):
        with pytest.raises(ValueError):
            gbps(1000, -5)

    def test_a_root_attack_bitrate_matches_table3(self):
        # Table 3: A-Root's 5.12 Mq/s of 84-byte queries = 3.44 Gb/s.
        rate = gbps(qps_from_mqps(5.12), EVENT_QUERY_WIRE_BYTES_NOV30)
        assert rate == pytest.approx(3.44, abs=0.01)

    def test_a_root_response_bitrate_matches_table3(self):
        # Table 3: A-Root's 3.84 Mq/s of ~493-byte responses = 15.13 Gb/s.
        rate = gbps(qps_from_mqps(3.84), 493)
        assert rate == pytest.approx(15.13, abs=0.03)

    def test_upper_bound_reply_traffic_near_151_gbps(self):
        # Section 3.1 / Table 3: 38.37 Mq/s of responses = ~151 Gb/s.
        rate = gbps(qps_from_mqps(38.37), EVENT_RESPONSE_WIRE_BYTES)
        assert rate == pytest.approx(151.6, abs=1.0)
