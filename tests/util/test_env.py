"""The single environment-variable choke point (`repro.util.env`).

Every ``os.environ`` read in the package goes through
:func:`repro.util.env.read_env` -- the purity analyzer's ENV_READ
allowlist has exactly one entry, and these tests pin the accessor
semantics that entry's justification relies on.
"""

from repro.util.env import (
    BGP_DELTA,
    SANITIZE,
    SWEEP_CHAOS,
    env_flag,
    env_str,
    read_env,
)


class TestReadEnv:
    def test_reads_live_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "value")
        assert read_env("REPRO_TEST_KNOB") == "value"

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert read_env("REPRO_TEST_KNOB") == ""
        assert read_env("REPRO_TEST_KNOB", "fallback") == "fallback"

    def test_rereads_per_call(self, monkeypatch):
        # monkeypatch.setenv in tests must take effect immediately --
        # no import-time caching.
        monkeypatch.setenv("REPRO_TEST_KNOB", "one")
        assert read_env("REPRO_TEST_KNOB") == "one"
        monkeypatch.setenv("REPRO_TEST_KNOB", "two")
        assert read_env("REPRO_TEST_KNOB") == "two"


class TestEnvFlag:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG") is False
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_zero_and_empty_are_false(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "0")
        assert env_flag("REPRO_TEST_FLAG", default=True) is False
        monkeypatch.setenv("REPRO_TEST_FLAG", "")
        assert env_flag("REPRO_TEST_FLAG", default=True) is False

    def test_anything_else_is_true(self, monkeypatch):
        for raw in ("1", "yes", "on", "weird"):
            monkeypatch.setenv("REPRO_TEST_FLAG", raw)
            assert env_flag("REPRO_TEST_FLAG") is True


class TestEnvStr:
    def test_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", "kill:3@1")
        assert env_str("REPRO_TEST_STR") == "kill:3@1"
        monkeypatch.delenv("REPRO_TEST_STR", raising=False)
        assert env_str("REPRO_TEST_STR", "none") == "none"


def test_declared_knob_names_are_stable():
    # These spellings are user-facing (docs, CI); renaming them is a
    # breaking change that must be deliberate.
    assert BGP_DELTA == "REPRO_BGP_DELTA"
    assert SWEEP_CHAOS == "REPRO_SWEEP_CHAOS"
    assert SANITIZE == "REPRO_SANITIZE"
