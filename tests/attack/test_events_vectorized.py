"""Edge cases for the vectorised event kernels.

``attack_rates`` and ``active_event_index`` feed the segment-batched
engine whole-window timestamp arrays; the per-bin reference path calls
the scalar ``attack_rate``/``active_event``.  Bit-identity of the two
engine paths rests on these pairs agreeing exactly -- including on
bin-boundary timestamps (half-open intervals), overlapping events
against the same letter, and zero-length intervals.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attack import (
    AttackEvent,
    active_event,
    active_event_index,
    attack_rate,
    attack_rates,
)
from repro.util import Interval


def _event(start, end, rate, targets, name="ev"):
    return AttackEvent(
        name=name,
        interval=Interval(start, end),
        qname=f"{name}.example.",
        rate_qps=rate,
        targets=targets,
        query_wire_bytes=84,
    )


class TestBinBoundaries:
    """Intervals are half-open: the start instant is inside, the end
    instant is outside, and both kernels must agree at the edges."""

    EVENT = _event(1000, 2000, 3.0e6, ("K",))

    @pytest.mark.parametrize(
        "timestamp,expected",
        [
            (999.999, 0.0),
            (1000.0, 3.0e6),  # start is inclusive
            (1999.999, 3.0e6),
            (2000.0, 0.0),  # end is exclusive
        ],
    )
    def test_scalar_half_open(self, timestamp, expected):
        assert attack_rate((self.EVENT,), "K", timestamp) == expected

    def test_vector_matches_scalar_at_edges(self):
        ts = np.array([999.999, 1000.0, 1500.0, 1999.999, 2000.0])
        vec = attack_rates((self.EVENT,), "K", ts)
        scalar = [attack_rate((self.EVENT,), "K", t) for t in ts]
        assert vec.tolist() == scalar
        idx = active_event_index((self.EVENT,), ts)
        assert idx.tolist() == [-1, 0, 0, 0, -1]


class TestOverlappingEvents:
    def test_rates_sum_over_same_letter(self):
        events = (
            _event(0, 100, 1.0e6, ("K",), name="a"),
            _event(50, 150, 2.0e6, ("K", "A"), name="b"),
        )
        ts = np.array([25.0, 75.0, 125.0])
        assert attack_rates(events, "K", ts).tolist() == [
            1.0e6, 3.0e6, 2.0e6,
        ]
        assert attack_rates(events, "A", ts).tolist() == [0.0, 2.0e6, 2.0e6]

    def test_first_event_in_tuple_order_wins(self):
        events = (
            _event(0, 100, 1.0e6, ("K",), name="a"),
            _event(50, 150, 2.0e6, ("K",), name="b"),
        )
        assert active_event(events, 75.0) is events[0]
        assert active_event_index(events, np.array([75.0]))[0] == 0
        # Swapping tuple order swaps the winner in the overlap.
        swapped = (events[1], events[0])
        assert active_event(swapped, 75.0) is events[1]
        assert active_event_index(swapped, np.array([75.0]))[0] == 0


class TestZeroLengthIntervals:
    def test_never_active(self):
        event = _event(1000, 1000, 5.0e6, ("K",))
        assert attack_rate((event,), "K", 1000.0) == 0.0
        assert active_event((event,), 1000.0) is None
        ts = np.array([999.0, 1000.0, 1001.0])
        assert attack_rates((event,), "K", ts).tolist() == [0.0, 0.0, 0.0]
        assert active_event_index((event,), ts).tolist() == [-1, -1, -1]

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(1000, 999)


@st.composite
def event_grids(draw):
    """Random events over a small window, letters drawn from A/K/L."""
    n = draw(st.integers(min_value=1, max_value=4))
    events = []
    for i in range(n):
        start = draw(st.integers(min_value=0, max_value=900))
        length = draw(st.integers(min_value=0, max_value=400))
        rate = draw(
            st.floats(min_value=1.0, max_value=1e7,
                      allow_nan=False, allow_infinity=False)
        )
        letters = draw(
            st.sets(st.sampled_from(["A", "K", "L"]), min_size=1)
        )
        events.append(
            _event(start, start + length, rate, tuple(sorted(letters)),
                   name=f"ev{i}")
        )
    return tuple(events)


class TestVectorisedEquivalence:
    @given(events=event_grids(), data=st.data())
    def test_rates_bitwise_equal_scalar(self, events, data):
        ts = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=-100.0, max_value=1500.0,
                              allow_nan=False),
                    min_size=1, max_size=32,
                )
            )
        )
        for letter in ("A", "K", "L"):
            vec = attack_rates(events, letter, ts)
            scalar = np.array(
                [attack_rate(events, letter, float(t)) for t in ts]
            )
            # Bitwise equality, not approx: the batched engine relies
            # on the same accumulation order as the scalar kernel.
            assert np.array_equal(vec, scalar)

    @given(events=event_grids(), data=st.data())
    def test_active_index_matches_scalar(self, events, data):
        ts = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=-100.0, max_value=1500.0,
                              allow_nan=False),
                    min_size=1, max_size=32,
                )
            )
        )
        idx = active_event_index(events, ts)
        for i, t in enumerate(ts):
            event = active_event(events, float(t))
            want = -1 if event is None else events.index(event)
            assert idx[i] == want
