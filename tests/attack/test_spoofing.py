"""Tests for spoofed-source generation, validating the analytic model."""

import numpy as np
import pytest

from repro.attack import (
    SpoofedSourceModel,
    expected_unique_sources,
    format_ipv4,
)
from repro.dns import ResponseRateLimiter, RrlAction


class TestFormat:
    def test_dotted_quads(self):
        assert format_ipv4(np.array([0], dtype=np.uint32)) == ["0.0.0.0"]
        assert format_ipv4(
            np.array([0xC0000201], dtype=np.uint32)
        ) == ["192.0.2.1"]


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpoofedSourceModel(top_share=1.5)
        with pytest.raises(ValueError):
            SpoofedSourceModel(pool_size=0)
        with pytest.raises(ValueError):
            SpoofedSourceModel().sample(-1, np.random.default_rng(0))

    def test_top_sources_dominate(self):
        model = SpoofedSourceModel(top_sources=200, top_share=0.68,
                                   seed=1)
        rng = np.random.default_rng(2)
        sample = model.sample(20_000, rng)
        values, counts = np.unique(sample, return_counts=True)
        top200 = np.sort(counts)[-200:].sum()
        # The 200 heaviest sources carry roughly the configured share.
        assert 0.6 < top200 / sample.size < 0.76

    def test_pure_random_matches_analytic_uniques(self):
        # Statistical check of the occupancy formula used for Table 3.
        pool = 50_000
        n = 100_000
        model = SpoofedSourceModel(top_sources=0, top_share=0.0,
                                   pool_size=pool)
        rng = np.random.default_rng(3)
        sample = model.sample(n, rng)
        empirical = np.unique(sample).size
        expected = expected_unique_sources(n, pool)
        assert empirical == pytest.approx(expected, rel=0.02)

    def test_deterministic_top_set(self):
        a = SpoofedSourceModel(seed=7)
        b = SpoofedSourceModel(seed=7)
        assert (a._top_addresses() == b._top_addresses()).all()


class TestRrlAgainstSpoofedMix:
    def test_rrl_suppression_matches_paper_ballpark(self):
        # Feed the event mix through a packet-level limiter: only the
        # repeated top sources are suppressible, so total suppression
        # lands near the duplicate share (~60 %, section 2.3).
        model = SpoofedSourceModel(top_sources=50, top_share=0.68,
                                   seed=1)
        rrl = ResponseRateLimiter(
            responses_per_second=0.2, window_seconds=10, slip=0
        )
        rng = np.random.default_rng(4)
        addresses = format_ipv4(model.sample(4000, rng))
        suppressed = sum(
            1
            for i, src in enumerate(addresses)
            if rrl.account(src, "www.336901.com.", i / 400.0)
            is RrlAction.DROP
        )
        ratio = suppressed / len(addresses)
        assert 0.5 < ratio < 0.72
