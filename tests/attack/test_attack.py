"""Tests for botnet placement, events, and the baseline workload."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attack import (
    DEC1_EVENT,
    NOV2015_EVENTS,
    NOV30_EVENT,
    AttackEvent,
    BaselineWorkload,
    Botnet,
    BotnetConfig,
    active_event,
    attack_rate,
    build_botnet,
    expected_unique_sources,
    legit_shares_by_site,
    retry_spill,
)
from repro.netsim import TopologyConfig, build_topology
from repro.rootdns import FacilityRegistry, build_deployments
from repro.util import EVENT_1, EVENT_2, Interval, utc


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig(n_stubs=300),
                          np.random.default_rng(3))


@pytest.fixture(scope="module")
def deployments(topo):
    return build_deployments(topo, FacilityRegistry())


class TestEvents:
    def test_nov30_parameters_match_paper(self):
        assert NOV30_EVENT.qname == "www.336901.com."
        assert NOV30_EVENT.interval == EVENT_1
        assert NOV30_EVENT.query_wire_bytes == 84
        assert NOV30_EVENT.rate_qps == pytest.approx(5.0e6)

    def test_dec1_parameters_match_paper(self):
        assert DEC1_EVENT.qname == "www.916yy.com."
        assert DEC1_EVENT.interval == EVENT_2
        assert DEC1_EVENT.query_wire_bytes == 85

    def test_d_l_m_never_targeted(self):
        for event in NOV2015_EVENTS:
            assert set("DLM").isdisjoint(event.targets)

    def test_rate_zero_outside_window(self):
        before = utc(2015, 11, 30, 6, 0)
        assert attack_rate(NOV2015_EVENTS, "K", before) == 0.0
        during = utc(2015, 11, 30, 7, 0)
        assert attack_rate(NOV2015_EVENTS, "K", during) == pytest.approx(5e6)
        assert attack_rate(NOV2015_EVENTS, "L", during) == 0.0

    def test_active_event(self):
        assert active_event(NOV2015_EVENTS, utc(2015, 11, 30, 7, 0)) is (
            NOV30_EVENT
        )
        assert active_event(NOV2015_EVENTS, utc(2015, 12, 1, 5, 30)) is (
            DEC1_EVENT
        )
        assert active_event(NOV2015_EVENTS, utc(2015, 11, 30, 20, 0)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackEvent("x", Interval(0, 1), "q.", 0.0, ("K",), 84)
        with pytest.raises(ValueError):
            AttackEvent("x", Interval(0, 1), "q.", 1.0, (), 84)
        with pytest.raises(ValueError):
            AttackEvent("x", Interval(0, 1), "q.", 1.0, ("K", "K"), 84)


class TestBotnet:
    def test_weights_normalised(self):
        net = Botnet(np.array([1, 2, 3]), np.array([2.0, 2.0, 4.0]))
        assert net.weights.sum() == pytest.approx(1.0)
        assert net.weights[2] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Botnet(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            Botnet(np.array([1]), np.array([-1.0]))
        with pytest.raises(ValueError):
            Botnet(np.array([1, 2]), np.array([1.0]))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BotnetConfig(hotspots={"LHR": 1.5})
        with pytest.raises(ValueError):
            BotnetConfig(zipf_alpha=1.0)
        with pytest.raises(ValueError):
            BotnetConfig(n_tail_clusters=0)

    def test_build_is_deterministic(self, topo):
        config = BotnetConfig()
        a = build_botnet(topo, config, np.random.default_rng(1))
        b = build_botnet(topo, config, np.random.default_rng(1))
        assert (a.asns == b.asns).all()
        assert np.allclose(a.weights, b.weights)

    def test_hotspot_sites_carry_the_bulk(self, topo, deployments):
        config = BotnetConfig()
        net = build_botnet(topo, config, np.random.default_rng(1))
        shares = net.load_shares_by_site(deployments["K"].routing())
        assert sum(shares.values()) == pytest.approx(1.0, abs=0.02)
        # The K sites at/near hotspot metros take most of the volume.
        hot = sum(
            shares.get(code, 0.0)
            for code in ("LHR", "FRA", "AMS", "NRT", "MIA", "PAO", "MKC")
        )
        assert hot > 0.5

    def test_withdrawal_moves_bot_load(self, topo, deployments):
        net = build_botnet(topo, BotnetConfig(), np.random.default_rng(1))
        k = deployments["K"]
        before = net.load_shares_by_site(k.routing())
        k.prefix.set_blocked(
            "LHR", k._blocked_set_for_partial("LHR"), 1.0
        )
        after = net.load_shares_by_site(k.routing())
        k.prefix.set_blocked("LHR", frozenset(), 2.0)
        assert after.get("LHR", 0.0) < before.get("LHR", 0.0)
        assert after.get("AMS", 0.0) > before.get("AMS", 0.0)


class TestUniqueSources:
    def test_zero_queries(self):
        assert expected_unique_sources(0, 2**31) == 0.0

    def test_small_counts_nearly_all_distinct(self):
        distinct = expected_unique_sources(1e6, 2**31)
        assert distinct == pytest.approx(1e6, rel=0.01)

    def test_saturates_at_pool_size(self):
        distinct = expected_unique_sources(1e12, 2**31)
        assert distinct == pytest.approx(2**31, rel=0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_unique_sources(-1, 10)
        with pytest.raises(ValueError):
            expected_unique_sources(1, 0)

    @given(q=st.floats(min_value=0, max_value=1e13))
    def test_monotone_and_bounded(self, q):
        pool = 2**31
        distinct = expected_unique_sources(q, pool)
        assert 0 <= distinct <= pool
        assert distinct <= q + 1e-6 or q > pool


class TestWorkload:
    def test_diurnal_cycle_peaks_at_configured_hour(self):
        wl = BaselineWorkload(base_qps=40_000, peak_utc_hour=14.0)
        peak = wl.rate_at(utc(2015, 11, 30, 14, 0))
        trough = wl.rate_at(utc(2015, 11, 30, 2, 0))
        assert peak > trough
        assert peak == pytest.approx(40_000 * 1.15)

    def test_vectorised_matches_scalar(self):
        wl = BaselineWorkload(base_qps=40_000)
        times = np.array(
            [utc(2015, 11, 30, h, 0) for h in (0, 6, 12, 18)],
            dtype=np.float64,
        )
        vec = wl.rates_at(times)
        for i, t in enumerate(times):
            assert vec[i] == pytest.approx(wl.rate_at(t))

    def test_validation(self):
        with pytest.raises(ValueError):
            BaselineWorkload(base_qps=-1)
        with pytest.raises(ValueError):
            BaselineWorkload(base_qps=1, diurnal_amplitude=1.5)

    def test_legit_shares_partition(self, topo, deployments):
        shares = legit_shares_by_site(
            deployments["L"].routing(), topo.stub_asns
        )
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_legit_shares_need_stubs(self, deployments):
        with pytest.raises(ValueError):
            legit_shares_by_site(deployments["L"].routing(), [])


class TestRetrySpill:
    def test_losses_spread_to_other_letters(self):
        letters = list("ABCDEFGHIJKLM")
        extra = retry_spill({"B": 13_000.0}, letters)
        assert extra["B"] == 0.0
        # 80 % of the lost load spread over the 12 other letters.
        assert extra["L"] == pytest.approx(13_000 * 0.8 / 12)

    def test_multiple_sources_accumulate(self):
        letters = ["A", "B", "C"]
        extra = retry_spill({"A": 100.0, "B": 100.0}, letters)
        assert extra["C"] == pytest.approx(2 * 100 * 0.8 / 2)

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            retry_spill({"A": -1.0}, ["A", "B"])

    def test_memo_hit_is_identical_to_fresh(self):
        from repro.attack import workload

        letters = list("ABCDE")
        lost = {"A": 50.0, "C": 10.0}
        workload._OTHERS_MEMO.clear()
        fresh = retry_spill(lost, letters)
        assert tuple(letters) in workload._OTHERS_MEMO
        assert retry_spill(lost, letters) == fresh
