"""Tests for the recursive-resolver layer (whole-root redundancy)."""

import numpy as np
import pytest

from repro.resolver import (
    Outcome,
    RecursiveResolver,
    ResolverConfig,
    RootSystemView,
    SrttSelector,
    TtlCache,
    UniformSelector,
    WholeRootConfig,
    run_whole_root,
)


class TestTtlCache:
    def test_miss_then_hit(self):
        cache = TtlCache()
        assert not cache.get("com", 0.0)
        cache.put("com", 0.0, ttl=100.0)
        assert cache.get("com", 50.0)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_expiry(self):
        cache = TtlCache()
        cache.put("com", 0.0, ttl=100.0)
        assert not cache.get("com", 100.0)
        assert len(cache) == 0

    def test_flush(self):
        cache = TtlCache()
        cache.put("com", 0.0, 100.0)
        cache.flush()
        assert not cache.get("com", 1.0)

    def test_bad_ttl(self):
        with pytest.raises(ValueError):
            TtlCache().put("com", 0.0, 0.0)

    def test_hit_ratio(self):
        cache = TtlCache()
        assert cache.hit_ratio == 0.0
        cache.put("com", 0.0, 10.0)
        cache.get("com", 1.0)
        cache.get("net", 1.0)
        assert cache.hit_ratio == pytest.approx(0.5)


class TestSelectors:
    def test_srtt_prefers_fastest(self):
        sel = SrttSelector(letters=("A", "B", "C"))
        sel.update("B", 10.0)
        sel.update("A", 300.0)
        rng = np.random.default_rng(0)
        assert sel.pick(set(), rng) == "B"

    def test_penalty_steers_away(self):
        # The letter-flip mechanism: timeouts push resolvers to other
        # letters (section 3.4.1).
        sel = SrttSelector(letters=("A", "B"))
        sel.update("A", 10.0)
        sel.update("B", 50.0)
        rng = np.random.default_rng(0)
        assert sel.pick(set(), rng) == "A"
        for _ in range(5):
            sel.penalize("A")
        assert sel.pick(set(), rng) == "B"

    def test_exclusion(self):
        sel = SrttSelector(letters=("A", "B"))
        rng = np.random.default_rng(0)
        assert sel.pick({"A"}, rng) == "B"
        with pytest.raises(ValueError):
            sel.pick({"A", "B"}, rng)

    def test_decay_allows_reexploration(self):
        sel = SrttSelector(letters=("A", "B"), decay=0.5)
        sel.update("A", 10.0)
        sel.penalize("A")
        sel.penalize("A")
        # B decays towards zero as A is repeatedly used/penalised.
        for _ in range(20):
            sel.penalize("A")
        rng = np.random.default_rng(0)
        assert sel.pick(set(), rng) == "B"

    def test_unknown_letter_raises(self):
        sel = SrttSelector(letters=("A",))
        with pytest.raises(KeyError):
            sel.update("Z", 1.0)
        with pytest.raises(KeyError):
            sel.penalize("Z")

    def test_uniform_selector(self):
        sel = UniformSelector(letters=("A", "B", "C"))
        rng = np.random.default_rng(0)
        picks = {sel.pick(set(), rng) for _ in range(50)}
        assert picks == {"A", "B", "C"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SrttSelector(letters=())
        with pytest.raises(ValueError):
            SrttSelector(letters=("A",), alpha=0.0)
        with pytest.raises(ValueError):
            UniformSelector(letters=())


class TestRootView:
    def test_query_interface(self, scenario):
        view = RootSystemView(scenario)
        rng = np.random.default_rng(1)
        quiet = scenario.grid.start + 20 * 3600
        ok, rtt = view.query("L", 0, quiet, rng)
        assert ok
        assert 0 < rtt <= 1000.0

    def test_attacked_letter_fails_often_during_event(self, scenario):
        view = RootSystemView(scenario)
        rng = np.random.default_rng(1)
        during = scenario.grid.start + int(8 * 3600)
        failures = sum(
            1
            for i in range(0, view.n_stubs, 3)
            if not view.query("B", i, during, rng)[0]
        )
        assert failures > view.n_stubs / 3 * 0.5

    def test_validation(self, scenario):
        view = RootSystemView(scenario)
        rng = np.random.default_rng(1)
        with pytest.raises(KeyError):
            view.query("Z", 0, scenario.grid.start, rng)
        with pytest.raises(IndexError):
            view.query("L", 10**6, scenario.grid.start, rng)


class TestResolver:
    def _resolver(self, scenario, **kwargs):
        view = RootSystemView(scenario)
        return RecursiveResolver(
            stub_index=0,
            view=view,
            selector=SrttSelector(letters=tuple(scenario.letters)),
            config=ResolverConfig(**kwargs),
            rng=np.random.default_rng(2),
        )

    def test_cache_hit_after_first_lookup(self, scenario):
        resolver = self._resolver(scenario)
        t = float(scenario.grid.start + 1000)
        first = resolver.resolve("com", t)
        assert first.outcome is Outcome.ROOT_OK
        second = resolver.resolve("com", t + 60)
        assert second.outcome is Outcome.CACHE_HIT
        assert second.latency_ms == 0.0

    def test_retries_across_letters(self, scenario):
        resolver = self._resolver(scenario, max_attempts=4)
        during = float(scenario.grid.start + 8 * 3600)
        # Force the selector onto B first.
        for letter in scenario.letters:
            resolver.selector.srtt[letter] = 500.0
        resolver.selector.srtt["B"] = 1.0
        resolution = resolver.resolve("org", during)
        if resolution.outcome is Outcome.ROOT_OK:
            assert resolution.letters_tried[0] == "B" or (
                len(resolution.letters_tried) >= 1
            )
        assert len(set(resolution.letters_tried)) == len(
            resolution.letters_tried
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResolverConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ResolverConfig(delegation_ttl_s=0)


class TestWholeRoot:
    @pytest.fixture(scope="class")
    def outcome(self, scenario):
        config = WholeRootConfig(
            n_resolvers=60,
            queries_per_resolver_per_bin=1.5,
        )
        return run_whole_root(scenario, config, np.random.default_rng(5))

    def test_end_users_barely_notice(self, outcome):
        # Section 2.3: "no known reports of end-user visible errors".
        assert outcome.overall_failure_fraction() < 0.01

    def test_caching_absorbs_most_queries(self, outcome):
        hit_ratio = outcome.cache_hits.sum() / outcome.user_queries.sum()
        assert hit_ratio > 0.8

    def test_lookup_latency_bumps_during_events(self, scenario, outcome):
        mask = scenario.grid.event_mask()
        latency = outcome.mean_lookup_latency_ms
        quiet = float(np.nanmedian(latency[~mask]))
        during = float(np.nanmedian(latency[mask]))
        assert during > 1.5 * quiet

    def test_letter_share_bundle(self, scenario, outcome):
        bundle = outcome.letter_share_series()
        assert sorted(bundle.names) == sorted(scenario.letters)

    def test_short_ttl_steers_away_from_attacked_letters(self, scenario):
        # With frequent root lookups, SRTT selection drains successful
        # traffic from attacked letters during the events -- the
        # resolver-side view of the paper's letter flips.
        config = WholeRootConfig(
            n_resolvers=40,
            queries_per_resolver_per_bin=2.0,
            resolver=ResolverConfig(delegation_ttl_s=600.0),
        )
        outcome = run_whole_root(
            scenario, config, np.random.default_rng(6)
        )
        mask = scenario.grid.event_mask()
        attacked = sum(
            outcome.letter_successes[L] for L in ("B", "H")
        )
        safe = sum(outcome.letter_successes[L] for L in ("D", "L", "M"))
        quiet_ratio = attacked[~mask].sum() / max(safe[~mask].sum(), 1)
        event_ratio = attacked[mask].sum() / max(safe[mask].sum(), 1)
        assert event_ratio < quiet_ratio

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WholeRootConfig(n_resolvers=0)
        with pytest.raises(ValueError):
            WholeRootConfig(selection="fastest")
