"""In-process coverage for the CI determinism gate's diff logic.

``scripts/check_determinism.py`` used to be exercised only by the CI
job.  These tests run its ``compare_runs`` on two in-process scenario
runs: identical seeds must produce an empty diff, and a deliberately
perturbed run must be caught -- proving the gate can actually fail,
not just pass.
"""

import sys
from pathlib import Path

import pytest

from repro.faults import FaultPlan, SiteFailure
from repro.scenario.config import ScenarioConfig
from repro.scenario.engine import simulate
from repro.util.timegrid import EVENT_WINDOW_START

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from check_determinism import compare_runs, faulted_config  # noqa: E402


def small_config(seed=7):
    """A fast scenario that still exercises a randomized fault scope."""
    return ScenarioConfig(
        seed=seed,
        n_stubs=60,
        n_vps=30,
        letters=("A", "K"),
        include_nl=False,
        faults=FaultPlan(
            specs=(
                SiteFailure(
                    letter="K",
                    site="AMS",
                    start=EVENT_WINDOW_START + 6 * 3600,
                    duration_s=3600,
                    severity=1.0,
                ),
            )
        ),
    )


@pytest.fixture(scope="module")
def baseline_run():
    return simulate(small_config())


def test_identical_runs_have_empty_diff(baseline_run):
    repeat = simulate(small_config())
    assert compare_runs(baseline_run, repeat) == []


def test_perturbed_run_is_caught(baseline_run):
    perturbed = simulate(small_config(seed=8))
    mismatches = compare_runs(baseline_run, perturbed)
    assert mismatches, "a different seed must not produce identical outputs"
    # The diff names concrete outputs, not just a boolean.
    assert any("/" in name for name in mismatches)


def test_diff_is_symmetric(baseline_run):
    perturbed = simulate(small_config(seed=8))
    assert bool(compare_runs(baseline_run, perturbed)) == bool(
        compare_runs(perturbed, baseline_run)
    )


def test_ci_config_carries_every_fault_type():
    """The gate's scenario must keep exercising all six fault specs."""
    config = faulted_config()
    spec_types = {type(s).__name__ for s in config.faults}
    assert spec_types == {
        "SiteFailure",
        "BgpSessionReset",
        "VpDropout",
        "ControllerOutage",
        "PeerChurn",
        "RssacOutage",
    }
