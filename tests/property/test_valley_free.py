"""Route selection always yields valley-free (Gao-Rexford) paths.

:func:`repro.netsim.bgp.propagate` implements export policy in three
stages; this property checks the *outcome* independently: walk every
selected route's AS path hop by hop and verify it climbs through
providers, crosses at most one peering edge, then only descends to
customers.  A valley (customer route re-exported uphill) would let
traffic transit an edge network, which real routing policy -- and the
paper's catchment analysis -- forbids.

Topologies, deployed letters, and withdrawal subsets are all drawn by
hypothesis, so the check covers partial-withdrawal states the fixed
scenario tests never visit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.asgraph import ASGraph, Relationship
from repro.netsim.topology import TopologyConfig, build_topology
from repro.rootdns.deployment import build_deployments
from repro.rootdns.letters import LETTERS_SPEC
from repro.util.rng import component_rng


def _is_valley_free(graph: ASGraph, path: tuple[int, ...]) -> bool:
    """Check Gao-Rexford validity of an origin-first AS path.

    A hop ``(u, v)`` means *v* learned the route from *u*;
    ``graph.neighbors(u)[v]`` classifies *v* from *u*'s point of view,
    so PROVIDER is an uphill hop, CUSTOMER a downhill one.
    """
    descending = False
    for u, v in zip(path, path[1:]):
        rel = graph.neighbors(u).get(v)
        if rel is None:  # hop without a link: corrupt path
            return False
        if rel is Relationship.CUSTOMER:
            descending = True
        elif descending:
            # Uphill or peer hop after the path started descending
            # (or after its one peer crossing): a valley.
            return False
        elif rel is Relationship.PEER:
            descending = True  # at most one peer edge, then down only
    return True


@settings(max_examples=15)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_stubs=st.integers(10, 40),
    letter=st.sampled_from(sorted(LETTERS_SPEC)),
    data=st.data(),
)
def test_selected_routes_are_valley_free(seed, n_stubs, letter, data):
    topology = build_topology(
        TopologyConfig(n_stubs=n_stubs), component_rng(seed, "topology")
    )
    deployment = build_deployments(
        topology, letters={letter: LETTERS_SPEC[letter]}
    )[letter]
    withdrawn = data.draw(
        st.sets(st.sampled_from(deployment.site_order)),
        label="withdrawn sites",
    )
    for code in sorted(withdrawn):
        deployment.prefix.withdraw(code, timestamp=0.0)

    table = deployment.prefix.routing()
    graph = topology.graph
    routed = 0
    for asn in graph.asns:
        route = table.route(asn)
        if route is None:
            continue
        routed += 1
        assert route.path[0] == route.origin_asn
        assert route.path[-1] == asn
        assert _is_valley_free(graph, route.path), (asn, route.path)
    if deployment.prefix.announced_sites():
        # As long as anything is announced, at least the origin hosts
        # themselves hold routes; an empty table would mean the check
        # above vacuously passed.
        assert routed > 0
