"""Catchment shares conserve traffic at every announcement epoch.

The engine splits both legitimate and attack traffic across sites by
catchment share.  Conservation is the invariant the paper's load
accounting rests on: over the sources that *have* a route, shares sum
to exactly 1; sources without a route contribute nothing (their
traffic drops in transit, section 2.2), so totals never exceed 1.
The withdrawal sequence walks the prefix through a series of
announcement epochs -- exactly what the simulated controllers do --
and checks conservation at each one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.botnet import Botnet
from repro.attack.workload import legit_share_vector
from repro.netsim.topology import TopologyConfig, build_topology
from repro.rootdns.deployment import build_deployments
from repro.rootdns.letters import LETTERS_SPEC
from repro.util.rng import component_rng

#: K mixes global and local (IXP-peered) sites, so catchments include
#: the NO_EXPORT scopes where no-route sources actually occur.
LETTER = "K"


def _deployment(seed: int, n_stubs: int):
    topology = build_topology(
        TopologyConfig(n_stubs=n_stubs), component_rng(seed, "topology")
    )
    deployment = build_deployments(
        topology, letters={LETTER: LETTERS_SPEC[LETTER]}
    )[LETTER]
    return topology, deployment


def _assert_conserved(table, topology, deployment):
    stub_asns = topology.stub_asns
    vector, total = legit_share_vector(
        table, stub_asns, deployment.site_index
    )
    routed = sum(
        1 for asn in stub_asns if table.site_of(asn) is not None
    )
    # The vector and the scalar total are two views of one dict.
    assert vector.sum() == pytest.approx(total, abs=1e-12)
    # Each routed stub contributes exactly 1/N; nothing else does.
    assert total == pytest.approx(routed / len(stub_asns), abs=1e-12)
    assert (vector >= 0.0).all()
    assert total <= 1.0 + 1e-12
    if routed == len(stub_asns):
        assert total == pytest.approx(1.0, abs=1e-12)


@settings(max_examples=15)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_stubs=st.integers(20, 50),
    data=st.data(),
)
def test_legit_shares_sum_to_one_per_epoch(seed, n_stubs, data):
    topology, deployment = _deployment(seed, n_stubs)
    order = data.draw(
        st.permutations(deployment.site_order), label="withdrawal order"
    )
    # Epoch 0: everything announced.  A global site is always up, so
    # every stub has a route and shares sum to exactly 1.
    table = deployment.prefix.routing()
    _assert_conserved(table, topology, deployment)
    assert legit_share_vector(
        table, topology.stub_asns, deployment.site_index
    )[1] == pytest.approx(1.0, abs=1e-12)
    # Subsequent epochs: withdraw one site at a time, as the policy
    # controllers do, and re-check conservation in each state.
    for epoch, code in enumerate(order, start=1):
        deployment.prefix.withdraw(code, timestamp=float(epoch))
        _assert_conserved(
            deployment.prefix.routing(), topology, deployment
        )


@settings(max_examples=15)
@given(
    seed=st.integers(0, 2**32 - 1),
    n_stubs=st.integers(20, 50),
    data=st.data(),
)
def test_botnet_shares_sum_to_routed_weight(seed, n_stubs, data):
    topology, deployment = _deployment(seed, n_stubs)
    withdrawn = data.draw(
        st.sets(st.sampled_from(deployment.site_order)),
        label="withdrawn sites",
    )
    for code in sorted(withdrawn):
        deployment.prefix.withdraw(code, timestamp=0.0)
    table = deployment.prefix.routing()

    member_asns = data.draw(
        st.lists(
            st.sampled_from(topology.stub_asns),
            min_size=1, max_size=8, unique=True,
        ),
        label="botnet ASNs",
    )
    weights = data.draw(
        st.lists(
            st.floats(0.01, 10.0),
            min_size=len(member_asns), max_size=len(member_asns),
        ),
        label="botnet weights",
    )
    botnet = Botnet(np.array(member_asns), np.array(weights))

    shares = botnet.load_shares_by_site(table)
    routed_mask = np.array(
        [table.site_of(int(asn)) is not None for asn in botnet.asns]
    )
    routed_weight = float(botnet.weights[routed_mask].sum())
    assert all(share >= 0.0 for share in shares.values())
    total = sum(shares.values())
    # Bots with no route drop their traffic: the per-site shares sum
    # to exactly the routed weight, never more than 1.
    assert total == pytest.approx(routed_weight, abs=1e-12)
    assert total <= 1.0 + 1e-12
