"""Properties of the site overload model (:mod:`repro.netsim.queueing`).

The paper's "degraded absorber" story (section 2.2) only holds if the
model behaves like a physical bottleneck: pushing more load at a site
can never *increase* the fraction of queries it answers, loss is a
fraction, and queueing delay never exceeds the buffer drain time.
Hypothesis explores the full validated parameter space, including the
``loss_knee == 1`` edge where the early-loss ramp vanishes and the
saturated branch starts from zero.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.queueing import OverloadModel

#: Every parameter combination the model's own validation accepts.
models = st.builds(
    OverloadModel,
    service_ms=st.floats(0.01, 10.0),
    buffer_ms=st.floats(1.0, 5000.0),
    loss_knee=st.floats(0.5, 1.0),
)

#: Ascending utilisation grids spanning idle through deep overload,
#: always straddling the knee region where the branches meet.
load_grids = st.lists(
    st.floats(0.0, 50.0), min_size=2, max_size=64
).map(lambda values: np.array(sorted(values + [0.9, 1.0, 1.1])))


@given(model=models, offered=load_grids)
def test_response_monotone_non_increasing_in_load(model, offered):
    # The answered fraction (1 - loss) can only fall as load rises:
    # the branch boundaries at the knee and at saturation must not
    # introduce a dip.
    _, loss, _ = model.evaluate(offered, np.ones_like(offered))
    response = 1.0 - loss
    assert (np.diff(response) <= 1e-12).all(), response


@given(model=models, offered=load_grids)
def test_loss_clipped_to_unit_interval(model, offered):
    _, loss, _ = model.evaluate(offered, np.ones_like(offered))
    assert (loss >= 0.0).all()
    assert (loss <= 1.0).all()


@given(model=models, offered=load_grids)
def test_delay_non_negative_and_buffer_bounded(model, offered):
    _, _, delay = model.evaluate(offered, np.ones_like(offered))
    assert (delay >= 0.0).all()
    assert (delay <= model.buffer_ms).all()


@given(
    model=models,
    offered=st.floats(0.0, 50.0),
    capacity=st.floats(0.1, 1000.0),
)
def test_scalar_api_matches_vectorised(model, offered, capacity):
    # The engine uses evaluate(); diagnostics use the scalar helpers.
    # They must agree exactly or golden comparisons would depend on
    # which path produced a number.
    grid = np.array([offered])
    cap = np.array([capacity])
    rho, loss, delay = model.evaluate(grid, cap)
    assert model.utilisation(offered, capacity) == rho[0]
    assert model.loss_fraction(offered, capacity) == loss[0]
    assert model.queue_delay_ms(offered, capacity) == delay[0]
