"""Delta propagation is bit-identical to full propagation.

:func:`repro.netsim.bgp.propagate_delta` repairs a previous table in
place of re-running the kernel; its contract is exact equality with
``propagate(graph, origins)`` over the new origin set in canonical
(site-sorted) order -- same winners, same tie-break floats, same AS
paths, same table iteration order -- and therefore, transitively, with
the scalar reference implementation.  Hypothesis draws the topology,
the initial announcement state, and a *sequence* of announce /
withdraw / block edits; every intermediate table in the chain is
checked, so repair bugs that only surface after accumulated deltas
(stale shadow state, record-forest corruption) cannot hide.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import bgp_reference
from repro.netsim.asgraph import ASGraph, AsNode, Relationship
from repro.netsim.bgp import (
    Origin,
    RoutingTable,
    Scope,
    propagate,
    propagate_delta,
)
from repro.util import Location


@st.composite
def graph_and_origins(draw):
    """A random AS graph plus a pool of candidate origins.

    Provider edges orient low ASN -> high ASN so the transit hierarchy
    is acyclic, matching the kernel property suite; the origin pool is
    larger than the initially-announced set so announce edits have
    fresh sites to add.
    """
    n = draw(st.integers(min_value=3, max_value=12))
    graph = ASGraph()
    for asn in range(1, n + 1):
        graph.add_as(
            AsNode(
                asn=asn,
                location=Location(
                    draw(st.floats(min_value=-60, max_value=60)),
                    draw(st.floats(min_value=-170, max_value=170)),
                ),
            )
        )
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            kind = draw(st.sampled_from(["none", "none", "cust", "peer"]))
            if kind == "cust":
                graph.add_link(a, b, Relationship.PROVIDER)
            elif kind == "peer":
                graph.add_link(a, b, Relationship.PEER)
    pool_size = draw(st.integers(min_value=2, max_value=min(5, n)))
    pool_asns = draw(
        st.lists(
            st.integers(min_value=1, max_value=n),
            min_size=pool_size,
            max_size=pool_size,
            unique=True,
        )
    )
    pool = []
    for asn in pool_asns:
        pool.append(
            Origin(
                site=f"S{asn}",
                asn=asn,
                scope=draw(st.sampled_from([Scope.GLOBAL, Scope.LOCAL])),
                location=draw(
                    st.sampled_from([None, graph.node(asn).location])
                ),
                preference_discount=draw(
                    st.sampled_from([0.0, 0.25, 0.5])
                ),
            )
        )
    return graph, pool


def assert_tables_identical(actual: RoutingTable, expected: RoutingTable):
    actual_routes = actual._routes
    expected_routes = expected._routes
    assert list(actual_routes) == list(expected_routes)
    for asn, route in expected_routes.items():
        assert actual_routes[asn] == route, asn
    assert actual.catchments() == expected.catchments()
    assert list(actual.catchments()) == list(expected.catchments())
    assert actual.reachable_asns() == expected.reachable_asns()


class TestDeltaMatchesFull:
    @settings(max_examples=120, deadline=None)
    @given(data=graph_and_origins(), edits=st.data())
    def test_edit_chain_bit_identical(self, data, edits):
        graph, pool = data
        announced = {o.site: o for o in pool[: max(1, len(pool) // 2)]}
        table = propagate(graph, list(announced.values()))
        n_edits = edits.draw(
            st.integers(min_value=1, max_value=5), label="edit count"
        )
        previous_states = [dict(announced)]
        for _ in range(n_edits):
            kind = edits.draw(
                st.sampled_from(["announce", "withdraw", "block"]),
                label="edit kind",
            )
            if kind == "withdraw" and len(announced) > 1:
                site = edits.draw(
                    st.sampled_from(sorted(announced)), label="withdrawn"
                )
                del announced[site]
                table = propagate_delta(graph, table, withdraw=[site])
            elif kind == "block" and announced:
                site = edits.draw(
                    st.sampled_from(sorted(announced)), label="blocked site"
                )
                origin = announced[site]
                neighbors = sorted(graph.neighbors(origin.asn))
                blocked = edits.draw(
                    st.frozensets(
                        st.sampled_from(neighbors or [origin.asn]),
                        max_size=2,
                    ),
                    label="blocked set",
                )
                origin = origin.with_blocked(blocked)
                announced[site] = origin
                table = propagate_delta(graph, table, announce=[origin])
            else:
                origin = edits.draw(
                    st.sampled_from(pool), label="announced"
                )
                announced[origin.site] = origin
                table = propagate_delta(graph, table, announce=[origin])
            previous_states.append(dict(announced))
            canonical = [announced[s] for s in sorted(announced)]
            full = propagate(graph, canonical)
            assert_tables_identical(table, full)
            reference = bgp_reference.propagate(graph, canonical)
            assert_tables_identical(table, reference)

    @settings(max_examples=60, deadline=None)
    @given(data=graph_and_origins(), edits=st.data())
    def test_changes_from_cross_backing(self, data, edits):
        # changes_from must agree whichever implementation produced
        # either side: delta-vs-full, delta-vs-reference, and the
        # reference pair must all report the same changed set.
        graph, pool = data
        announced = {o.site: o for o in pool}
        # Canonical (site-sorted) order, matching ref_before below:
        # announcement order decides tie-breaks, so the kernel- and
        # reference-produced "before" tables must agree on it for the
        # changed-set comparison to be apples-to-apples.
        table = propagate(graph, [announced[s] for s in sorted(announced)])
        site = edits.draw(st.sampled_from(sorted(announced)), label="flap")
        survivors = {s: o for s, o in announced.items() if s != site}
        if not survivors:
            return
        delta_table = propagate_delta(graph, table, withdraw=[site])
        canonical = [survivors[s] for s in sorted(survivors)]
        full_table = propagate(graph, canonical)
        ref_before = bgp_reference.propagate(
            graph, [announced[s] for s in sorted(announced)]
        )
        ref_after = bgp_reference.propagate(graph, canonical)
        expected = ref_after.changes_from(ref_before)
        assert delta_table.changes_from(table) == expected
        assert full_table.changes_from(table) == expected
        assert delta_table.changes_from(ref_before) == expected
        assert ref_after.changes_from(delta_table) == set()
