"""The array propagation kernel is bit-identical to the scalar reference.

:func:`repro.netsim.bgp.propagate` (array kernel) must reproduce
:func:`repro.netsim.bgp_reference.propagate` exactly: the same winner
at every AS, the same tie-break floats, the same AS paths (including
the reference's stale-snapshot quirk, where a route keeps the path its
predecessor held at export time), and the same table iteration order
(the reference's dict-insertion order, which downstream consumers can
observe through ``catchments()``).

Topologies, origin subsets, announcement scopes, blocked-neighbor
sets, locations, and preference discounts are all drawn by hypothesis;
a failing example here is a kernel ordering bug, not flakiness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import bgp_reference
from repro.netsim.asgraph import ASGraph, AsNode, Relationship
from repro.netsim.bgp import Origin, RoutingTable, Scope, propagate
from repro.util import Location


@st.composite
def graph_and_origins(draw):
    """A random AS graph plus a random announcement state.

    Provider edges orient low ASN -> high ASN so the transit hierarchy
    is acyclic; origins draw scope, location (sometimes absent),
    export-blocking, and tie-break discounts independently.  Site ids
    intentionally collide sometimes (two origins may announce the same
    site name), because the reference resolves per-site lookups
    last-origin-wins and the kernel must match that too.
    """
    n = draw(st.integers(min_value=3, max_value=14))
    graph = ASGraph()
    for asn in range(1, n + 1):
        graph.add_as(
            AsNode(
                asn=asn,
                location=Location(
                    draw(st.floats(min_value=-60, max_value=60)),
                    draw(st.floats(min_value=-170, max_value=170)),
                ),
            )
        )
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            kind = draw(st.sampled_from(["none", "none", "cust", "peer"]))
            if kind == "cust":
                graph.add_link(a, b, Relationship.PROVIDER)
            elif kind == "peer":
                graph.add_link(a, b, Relationship.PEER)
    n_origins = draw(st.integers(min_value=1, max_value=min(4, n)))
    origin_asns = draw(
        st.lists(
            st.integers(min_value=1, max_value=n),
            min_size=n_origins,
            max_size=n_origins,
            unique=True,
        )
    )
    origins = []
    for asn in origin_asns:
        site = draw(st.sampled_from([f"S{asn}", "SHARED"]))
        blocked = draw(
            st.frozensets(
                st.sampled_from(sorted(graph.neighbors(asn)) or [asn]),
                max_size=2,
            )
        )
        origins.append(
            Origin(
                site=site,
                asn=asn,
                scope=draw(st.sampled_from([Scope.GLOBAL, Scope.LOCAL])),
                location=draw(
                    st.sampled_from([None, graph.node(asn).location])
                ),
                blocked_neighbors=blocked,
                preference_discount=draw(
                    st.sampled_from([0.0, 0.25, 0.5])
                ),
            )
        )
    return graph, origins


def assert_tables_identical(kernel: RoutingTable, ref: RoutingTable):
    kernel_routes = kernel._routes
    ref_routes = ref._routes
    # Same ASes, in the same (install) order -- catchments() and any
    # other dict-order-sensitive consumer sees no difference.
    assert list(kernel_routes) == list(ref_routes)
    for asn, expected in ref_routes.items():
        assert kernel_routes[asn] == expected, asn
    assert kernel.catchments() == ref.catchments()
    assert list(kernel.catchments()) == list(ref.catchments())
    assert kernel.reachable_asns() == ref.reachable_asns()
    assert len(kernel) == len(ref)


class TestKernelMatchesReference:
    @settings(max_examples=150, deadline=None)
    @given(data=graph_and_origins())
    def test_routes_bit_identical(self, data):
        graph, origins = data
        assert_tables_identical(
            propagate(graph, origins),
            bgp_reference.propagate(graph, origins),
        )

    @settings(max_examples=60, deadline=None)
    @given(data=graph_and_origins(), subset=st.data())
    def test_withdrawal_states_match(self, data, subset):
        # Origin subsets model withdrawals; the delta between two
        # announcement states must agree between implementations and
        # between array-array and dict-dict comparison paths.
        graph, origins = data
        keep = subset.draw(
            st.sets(st.sampled_from(range(len(origins)))),
            label="kept origin indices",
        )
        reduced = [o for i, o in enumerate(origins) if i in keep]
        kernel_full = propagate(graph, origins)
        ref_full = bgp_reference.propagate(graph, origins)
        if reduced:
            kernel_part = propagate(graph, reduced)
            ref_part = bgp_reference.propagate(graph, reduced)
            assert_tables_identical(kernel_part, ref_part)
        else:
            kernel_part = RoutingTable({})
            ref_part = RoutingTable({})
        assert kernel_part.changes_from(kernel_full) == ref_part.changes_from(
            ref_full
        )
        assert kernel_full.changes_from(kernel_part) == ref_full.changes_from(
            ref_part
        )

    @settings(max_examples=60, deadline=None)
    @given(data=graph_and_origins())
    def test_single_route_queries_match(self, data):
        # route()/site_of() take the lazy single-row path on the
        # kernel table; the full-dict path must agree with it.
        graph, origins = data
        kernel = propagate(graph, origins)
        ref = bgp_reference.propagate(graph, origins)
        for asn in graph.asns:
            assert kernel.route(asn) == ref.route(asn)
            assert kernel.site_of(asn) == ref.site_of(asn)
        assert kernel.route(10_000) is None
        site_index = {o.site: i for i, o in enumerate(origins)}
        asns = graph.asns + [10_000]
        assert (
            kernel.sites_of(asns, site_index)
            == ref.sites_of(asns, site_index)
        ).all()
