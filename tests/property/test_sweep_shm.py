"""Cross-process determinism: jobs=1, pickled, and shared-memory
dispatch are bit-identical over random sweep grids.

The sweep engine's core promise is that *how* cells are dispatched --
inline, to workers via pickled configs, or to workers attaching
zero-copy shared-memory substrates -- cannot change a single bit of
any result array.  Hypothesis draws small grids (runtime knobs only,
so cells share a substrate signature and the shm layer actually
engages) and checks all three paths against each other, with a second
property doing the same under the runtime determinism sanitizer
(``REPRO_SANITIZE=1``), whose freeze/counter machinery must not
interact with read-only shared views.

Example counts are tiny: each example runs three sweeps (two of them
spawning pools), so this is seconds per example -- the property
guards an invariant, it is not a fuzzer.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import diff_arrays, result_arrays
from repro.scenario.config import ScenarioConfig
from repro.sweep import SweepSpec, leaked_segments, run_sweep
from repro.util import env

_BASE = ScenarioConfig(
    seed=11,
    n_stubs=40,
    n_vps=24,
    letters=("A", "K"),
    include_nl=False,
)

#: Runtime-knob axes only: every cell keeps the base substrate
#: signature, so the parent exports exactly one shared segment.
_grids = st.fixed_dictionaries(
    {},
    optional={
        "baseline_days": st.lists(
            st.sampled_from([2, 3, 5, 7]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        "bin_seconds": st.lists(
            st.sampled_from([600, 1200]),
            min_size=1,
            max_size=2,
            unique=True,
        ),
    },
).filter(lambda axes: sum(len(v) for v in axes.values()) >= 2)


def _assert_three_way_identical(axes):
    spec = SweepSpec.grid(_BASE, axes)
    serial = run_sweep(spec, jobs=1)
    pickled = run_sweep(spec, jobs=2, shm=False)
    shared = run_sweep(spec, jobs=2, shm=True)
    assert not serial.failures
    assert not pickled.failures and not shared.failures
    assert pickled.shm_segments == 0
    if spec.n_cells >= 2:
        assert shared.shm_segments == 1
        assert (
            shared.routing_stats.get("shm/cell", 0) == spec.n_cells
        )
    for index in range(spec.n_cells):
        want = result_arrays(serial.results[index])
        assert not diff_arrays(
            result_arrays(pickled.results[index]), want
        )
        assert not diff_arrays(
            result_arrays(shared.results[index]), want
        )
    assert leaked_segments() == []


@settings(max_examples=3)
@given(axes=_grids)
def test_dispatch_paths_bit_identical(axes):
    _assert_three_way_identical(axes)


@settings(max_examples=2)
@given(axes=_grids)
def test_dispatch_paths_bit_identical_under_sanitizer(axes):
    # Manual save/restore instead of monkeypatch: hypothesis reuses
    # one test invocation for every example, so a function-scoped
    # fixture would not reset between draws anyway.
    previous = os.environ.get(env.SANITIZE)
    os.environ[env.SANITIZE] = "1"
    try:
        _assert_three_way_identical(axes)
    finally:
        if previous is None:
            del os.environ[env.SANITIZE]
        else:
            os.environ[env.SANITIZE] = previous
