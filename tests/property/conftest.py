"""Hypothesis configuration for the property-based test layer.

CI runs this suite with ``--hypothesis-seed=0`` so a failing example
reproduces identically across machines.  The profile itself disables
deadlines (topology construction dominates runtime and varies with
machine load, which would make deadline failures flaky) and keeps the
example count modest -- these properties guard invariants, they are
not fuzzers.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
