"""SweepSpec construction, cell enumeration, and validation."""

import pytest

from repro.sweep import SweepSpec, replicate_seeds


class TestGrid:
    def test_cartesian_product_last_axis_fastest(self, tiny_base):
        spec = SweepSpec.grid(
            tiny_base,
            {"baseline_days": [3, 7], "include_nl": [False, True]},
        )
        assert spec.n_points == 4
        assert spec.points[0] == (
            ("baseline_days", 3), ("include_nl", False)
        )
        assert spec.points[1] == (
            ("baseline_days", 3), ("include_nl", True)
        )
        assert spec.points[2] == (
            ("baseline_days", 7), ("include_nl", False)
        )

    def test_empty_axes_is_single_point(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {})
        assert spec.n_points == 1
        assert spec.points == ((),)

    def test_empty_axis_rejected(self, tiny_base):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec.grid(tiny_base, {"baseline_days": []})

    def test_unknown_field_rejected(self, tiny_base):
        with pytest.raises(ValueError, match="unknown ScenarioConfig"):
            SweepSpec.grid(tiny_base, {"not_a_field": [1]})

    def test_seed_axis_rejected(self, tiny_base):
        with pytest.raises(ValueError, match="may not override 'seed'"):
            SweepSpec.grid(tiny_base, {"seed": [1, 2]})


class TestCells:
    def test_seeds_outermost_indexing(self, tiny_base):
        spec = SweepSpec.grid(
            tiny_base, {"baseline_days": [3, 7]}, replicates=3
        )
        assert spec.n_cells == 6
        cells = spec.cells()
        for cell in cells:
            assert cell.index == (
                cell.seed_index * spec.n_points + cell.point_index
            )
            assert cells[cell.index] is not None
        # Contiguous pairs share a seed (cache locality).
        assert cells[0].config.seed == cells[1].config.seed
        assert cells[2].config.seed == cells[3].config.seed
        assert cells[0].config.seed != cells[2].config.seed

    def test_cell_config_applies_overrides(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {"baseline_days": [3, 7]})
        assert spec.cell(0).config.baseline_days == 3
        assert spec.cell(1).config.baseline_days == 7
        assert spec.cell(0).config.n_stubs == tiny_base.n_stubs

    def test_cell_index_out_of_range(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {})
        with pytest.raises(IndexError):
            spec.cell(1)
        with pytest.raises(IndexError):
            spec.cell(-1)

    def test_no_seeds_means_base_seed(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {})
        assert spec.effective_seeds() == (tiny_base.seed,)
        assert spec.cell(0).config == tiny_base

    def test_explicit_seeds(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {}, seeds=[11, 13])
        assert [c.config.seed for c in spec.cells()] == [11, 13]

    def test_seeds_and_replicates_exclusive(self, tiny_base):
        with pytest.raises(ValueError, match="not both"):
            SweepSpec.grid(tiny_base, {}, seeds=[1], replicates=2)

    def test_duplicate_seeds_rejected(self, tiny_base):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec.grid(tiny_base, {}, seeds=[5, 5])

    def test_label_names_seed_and_overrides(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {"baseline_days": [3]})
        label = spec.cell(0).label
        assert "seed=7" in label
        assert "baseline_days=3" in label


class TestReplicateSeeds:
    def test_deterministic_and_distinct(self):
        first = replicate_seeds(42, 16)
        assert first == replicate_seeds(42, 16)
        assert len(set(first)) == 16

    def test_prefix_stable(self):
        # Adding replicates never reshuffles earlier ones.
        assert replicate_seeds(42, 16)[:4] == replicate_seeds(42, 4)

    def test_different_base_different_streams(self):
        assert replicate_seeds(1, 4) != replicate_seeds(2, 4)

    def test_zero_replicates_rejected(self):
        with pytest.raises(ValueError):
            replicate_seeds(42, 0)
