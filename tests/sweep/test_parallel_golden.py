"""Parallel-vs-serial golden test (the sweep determinism gate).

Runs the pinned golden scenario through the sweep runner with
``jobs=1`` and ``jobs=4`` and requires every output array bit-identical
to the ``tests/scenario/golden/golden_engine.npz`` fixture -- the same
fixture the engine's own golden-equivalence test uses.  This is the
CI proof that neither process pools, nor chunking, nor the per-worker
substrate cache changes a single bit of simulated output.
"""

import pathlib
import sys

import numpy as np
import pytest

from repro.scenario import result_arrays
from repro.sweep import SweepSpec, run_sweep

FIXTURE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "scenario" / "golden" / "golden_engine.npz"
)
SCRIPTS = str(
    pathlib.Path(__file__).resolve().parent.parent.parent / "scripts"
)


def _golden_spec():
    sys.path.insert(0, SCRIPTS)
    try:
        from make_golden import golden_config
    finally:
        sys.path.remove(SCRIPTS)
    return SweepSpec.from_points(golden_config(), [{}])


@pytest.fixture(scope="module")
def golden():
    return np.load(FIXTURE)


@pytest.mark.parametrize("jobs", [1, 4])
def test_sweep_output_matches_golden_fixture(golden, jobs):
    sweep = run_sweep(_golden_spec(), jobs=jobs)
    arrays = result_arrays(sweep.results[0])
    assert set(golden.files) == set(arrays)
    mismatched = [
        name
        for name in golden.files
        if not np.array_equal(
            golden[name], np.asarray(arrays[name]), equal_nan=True
        )
    ]
    assert not mismatched, f"jobs={jobs} diverged: {mismatched}"
