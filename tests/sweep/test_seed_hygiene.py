"""Seed hygiene: distinct cells, distinct streams; standalone == in-sweep.

The two guarantees the sweep layer makes about randomness:

* replicate cells draw from distinct deterministic seed streams with
  no cross-cell coupling -- adding or removing cells never changes any
  other cell's outputs;
* ``simulate(cell.config)`` standalone reproduces the in-sweep result
  bit for bit (results are a pure function of the cell config).
"""

import pickle

from repro.scenario import diff_arrays, result_arrays, simulate
from repro.sweep import SweepSpec, run_sweep


class TestSeedHygiene:
    def test_distinct_cells_distinct_outputs(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {}, replicates=3)
        sweep = run_sweep(spec, jobs=1)
        seeds = [c.config.seed for c in sweep.cells]
        assert len(set(seeds)) == 3
        arrays = [result_arrays(r) for r in sweep.results]
        # Different seed streams actually diverge (Atlas draws differ).
        assert diff_arrays(arrays[0], arrays[1])
        assert diff_arrays(arrays[1], arrays[2])

    def test_cell_outputs_independent_of_sweep_shape(self, tiny_base):
        # Replicate 0 and 1 of a 2-cell sweep are bit-identical to the
        # same replicates inside a 3-cell sweep: no cross-cell RNG
        # coupling, no dependence on how many cells run.
        small = run_sweep(
            SweepSpec.grid(tiny_base, {}, replicates=2), jobs=1
        )
        large = run_sweep(
            SweepSpec.grid(tiny_base, {}, replicates=3), jobs=1
        )
        for i in range(2):
            assert not diff_arrays(
                result_arrays(small.results[i]),
                result_arrays(large.results[i]),
            )

    def test_standalone_rerun_reproduces_in_sweep_result(self, tiny_base):
        spec = SweepSpec.grid(
            tiny_base, {"baseline_days": [3, 7]}, replicates=2
        )
        sweep = run_sweep(spec, jobs=1)
        for cell in (spec.cell(1), spec.cell(2)):
            standalone = simulate(
                pickle.loads(pickle.dumps(cell.config))
            )
            assert not diff_arrays(
                result_arrays(standalone),
                result_arrays(sweep.results[cell.index]),
            )
