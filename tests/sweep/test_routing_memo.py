"""Cross-cell routing-table reuse through the substrate memo.

``Substrate.routing_memo`` is a second-level cache behind each
prefix's bounded LRU: it survives prefix resets and LRU eviction, so
sweep cells that share a substrate (same topology signature,
different attack/fault knobs) reuse each other's BGP propagations.
Reuse must be pure speed -- every output array stays bit-identical to
a fresh-substrate run, and ``jobs=N`` stays bit-identical to
``jobs=1`` with the memo in play.
"""

import dataclasses

import numpy as np
import pytest

from repro.netsim.anycast import PREFIX_CACHE_STATS
from repro.scenario import result_arrays
from repro.scenario.engine import build_substrate, simulate
from repro.sweep import SweepSpec, run_sweep


def _with_scaled_events(config, factor):
    """The same scenario with every attack's rate scaled by *factor*.

    Changes only a run-time knob, so the substrate signature -- and
    therefore the shared memo -- is identical to the base config's.
    """
    events = tuple(
        dataclasses.replace(event, rate_qps=event.rate_qps * factor)
        for event in config.events
    )
    return dataclasses.replace(config, events=events)


class TestSubstrateMemo:
    def test_memo_attached_to_every_prefix(self, tiny_base):
        substrate = build_substrate(tiny_base)
        for deployment in substrate.deployments.values():
            assert deployment.prefix._shared_memo is substrate.routing_memo

    def test_simulate_populates_memo_per_letter(self, tiny_base):
        substrate = build_substrate(tiny_base)
        simulate(tiny_base, substrate)
        assert substrate.routing_memo
        letters = {key[0] for key in substrate.routing_memo}
        assert letters <= set(substrate.deployments)

    def test_memo_serves_cells_across_lru_eviction(self, tiny_base):
        substrate = build_substrate(tiny_base)
        simulate(tiny_base, substrate)
        # Between cells, wipe every prefix LRU (what eviction pressure
        # from a fault-heavy cell would do); only the substrate memo
        # still remembers the first cell's tables.
        for deployment in substrate.deployments.values():
            deployment.prefix._cache.clear()
            deployment.prefix._current = None
        heavy = _with_scaled_events(tiny_base, 2.0)
        before = PREFIX_CACHE_STATS["memo_hits"]
        reused = simulate(heavy, substrate)
        assert PREFIX_CACHE_STATS["memo_hits"] > before

        fresh = simulate(heavy, build_substrate(heavy))
        got, want = result_arrays(reused), result_arrays(fresh)
        assert set(got) == set(want)
        for name in want:
            assert np.array_equal(
                np.asarray(got[name]), np.asarray(want[name]),
                equal_nan=True,
            ), name


class TestJobsParity:
    @pytest.mark.parametrize("jobs", [2])
    def test_attack_axis_bit_identical_across_jobs(self, tiny_base, jobs):
        points = [
            {},
            {"events": _with_scaled_events(tiny_base, 2.0).events},
        ]
        spec = SweepSpec.from_points(tiny_base, points)
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=jobs)
        assert len(serial.results) == len(parallel.results)
        for a, b in zip(serial.results, parallel.results):
            got, want = result_arrays(a), result_arrays(b)
            assert set(got) == set(want)
            for name in want:
                assert np.array_equal(
                    np.asarray(got[name]), np.asarray(want[name]),
                    equal_nan=True,
                ), name
