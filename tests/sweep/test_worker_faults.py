"""Worker-side fault-stream isolation.

A ``FaultPlan`` is resolved *inside* :func:`repro.scenario.simulate`
from an ``RngFactory`` seeded with the cell's own config seed -- the
``"faults"`` stream.  Workers hold no shared fault RNG, so a cell's
fault draws are a pure function of its config: the same plan resolved
in a pool worker, in the serial inline path, or standalone must yield
bit-identical outputs and quality reports, and distinct replicate
seeds must resolve randomized fault scopes differently.
"""

import pytest

from repro.faults import FaultPlan, VpDropout
from repro.scenario import diff_arrays, result_arrays, simulate
from repro.sweep import SweepSpec, run_sweep
from repro.util.timegrid import EVENT_WINDOW_START

#: Half the fleet drops out for an hour; which VPs is drawn from the
#: per-cell "faults" stream, making it a seed-sensitive probe.
DROPOUT_PLAN = FaultPlan(
    specs=(
        VpDropout(
            start=EVENT_WINDOW_START + 6 * 3600,
            duration_s=3600,
            fraction=0.5,
        ),
    )
)


@pytest.fixture(scope="module")
def faulted_spec(tiny_base):
    import dataclasses

    base = dataclasses.replace(tiny_base, faults=DROPOUT_PLAN)
    return SweepSpec.grid(base, {}, replicates=2)


class TestWorkerFaultIsolation:
    def test_pool_worker_matches_standalone(self, faulted_spec):
        # chunk_size=1 forces each cell through its own pool task.
        parallel = run_sweep(faulted_spec, jobs=2, chunk_size=1)
        for cell in faulted_spec.cells():
            standalone = simulate(cell.config)
            in_sweep = parallel.results[cell.index]
            assert not diff_arrays(
                result_arrays(standalone), result_arrays(in_sweep)
            )
            assert standalone.quality == in_sweep.quality
            assert in_sweep.quality.degraded

    def test_replicates_draw_distinct_fault_scopes(self, faulted_spec):
        sweep = run_sweep(faulted_spec, jobs=1)
        first, second = sweep.results
        # Same plan, different seeds: the dropped VP set differs, so
        # the Atlas matrices diverge.
        assert diff_arrays(
            result_arrays(first), result_arrays(second)
        )

    def test_serial_and_parallel_fault_draws_identical(self, faulted_spec):
        serial = run_sweep(faulted_spec, jobs=1)
        parallel = run_sweep(faulted_spec, jobs=2, chunk_size=1)
        for a, b in zip(serial.results, parallel.results):
            assert not diff_arrays(result_arrays(a), result_arrays(b))
            assert a.quality == b.quality
