"""Replicate aggregation: metric folding and quality-flag union."""

import dataclasses

import pytest

from repro.faults import FaultPlan, RssacOutage
from repro.sweep import MetricSummary, SweepSpec, run_sweep, summarize
from repro.sweep.aggregate import Z_95


class TestMetricSummary:
    def test_single_value(self):
        summary = MetricSummary.of([0.5])
        assert summary.mean == 0.5
        assert summary.std == 0.0
        assert summary.ci95_half == 0.0
        assert summary.n == 1

    def test_mean_std_ci(self):
        summary = MetricSummary.of([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.ci95_half == pytest.approx(Z_95 / 3**0.5)
        assert summary.values == (1.0, 2.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricSummary.of([])


class TestSummarize:
    def test_result_count_checked(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {}, replicates=2)
        with pytest.raises(ValueError, match="expected 2 results"):
            summarize(spec, [])

    def test_quality_flags_unioned_not_dropped(self, tiny_base):
        # Every replicate loses K's RSSAC day identically; the summary
        # keeps the flag exactly once instead of dropping it or
        # repeating it per seed.
        plan = FaultPlan(
            specs=(
                RssacOutage(
                    letter="K",
                    start=tiny_base.window_start,
                    duration_s=86_400,
                ),
            )
        )
        base = dataclasses.replace(tiny_base, faults=plan)
        spec = SweepSpec.grid(base, {}, replicates=2)
        sweep = run_sweep(spec, jobs=1)
        assert all(r.quality.degraded for r in sweep.results)
        (summary,) = sweep.summaries
        assert summary.quality.degraded
        per_run_flags = sweep.results[0].quality.flags
        assert summary.quality.flags == per_run_flags

    def test_record_rendering(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {"baseline_days": [3]})
        sweep = run_sweep(spec, jobs=1)
        record = sweep.summaries[0].as_record()
        assert record["point"] == 0
        assert record["overrides"] == {"baseline_days": "3"}
        assert "availability" in record["metrics"]
        assert record["metrics"]["availability"]["n"] == 1
