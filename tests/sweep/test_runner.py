"""Runner behaviour: index keying, chunk invariance, progress stream."""

import pytest

from repro.scenario import diff_arrays, result_arrays
from repro.sweep import (
    CELL_DONE,
    SWEEP_DONE,
    SWEEP_START,
    SweepSpec,
    default_chunk_size,
    run_sweep,
)


@pytest.fixture(scope="module")
def two_cell_spec(tiny_base):
    return SweepSpec.grid(tiny_base, {"baseline_days": [3, 7]})


@pytest.fixture(scope="module")
def serial(two_cell_spec):
    return run_sweep(two_cell_spec, jobs=1)


class TestRunner:
    def test_results_in_cell_order(self, two_cell_spec, serial):
        assert len(serial.results) == two_cell_spec.n_cells
        for cell, result in zip(serial.cells, serial.results):
            assert result.config == cell.config

    def test_chunk_size_invariance(self, two_cell_spec, serial):
        rechunked = run_sweep(two_cell_spec, jobs=1, chunk_size=1)
        for a, b in zip(serial.results, rechunked.results):
            assert not diff_arrays(result_arrays(a), result_arrays(b))

    def test_rerun_is_identical(self, two_cell_spec, serial):
        again = run_sweep(two_cell_spec, jobs=1)
        for a, b in zip(serial.results, again.results):
            assert not diff_arrays(result_arrays(a), result_arrays(b))

    def test_progress_stream(self, two_cell_spec):
        events = []
        run_sweep(two_cell_spec, jobs=1, progress=events.append)
        kinds = [e.kind for e in events]
        assert kinds[0] == SWEEP_START
        assert kinds[-1] == SWEEP_DONE
        cell_events = [e for e in events if e.kind == CELL_DONE]
        assert len(cell_events) == two_cell_spec.n_cells
        assert [e.completed for e in cell_events] == [1, 2]
        assert sorted(e.index for e in cell_events) == [0, 1]
        assert all(e.total == two_cell_spec.n_cells for e in events)

    def test_summaries_one_per_point(self, two_cell_spec, serial):
        assert len(serial.summaries) == two_cell_spec.n_points
        for point_index, summary in enumerate(serial.summaries):
            assert summary.point_index == point_index
            assert summary.metrics["availability"].n == 1

    def test_invalid_jobs(self, two_cell_spec):
        with pytest.raises(ValueError):
            run_sweep(two_cell_spec, jobs=0)

    def test_invalid_chunk_size(self, two_cell_spec):
        with pytest.raises(ValueError):
            run_sweep(two_cell_spec, jobs=1, chunk_size=0)


class TestDefaultChunkSize:
    def test_serial_prefers_long_chunks(self):
        assert default_chunk_size(16, 1) == 4

    def test_never_below_one(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 4) == 1


class TestEdgeGrids:
    """Degenerate grids must be bit-identical serial vs pool."""

    def _check(self, spec, **pool_kwargs):
        serial = run_sweep(spec, jobs=1)
        pooled = run_sweep(spec, **pool_kwargs)
        assert len(serial.results) == len(pooled.results) == spec.n_cells
        for a, b in zip(serial.results, pooled.results):
            assert not diff_arrays(result_arrays(a), result_arrays(b))

    def test_no_axes_is_one_cell(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {})
        assert spec.n_cells == 1
        self._check(spec, jobs=2)

    def test_single_cell_grid(self, tiny_base):
        spec = SweepSpec.grid(tiny_base, {"baseline_days": [3]})
        assert spec.n_cells == 1
        self._check(spec, jobs=2)

    def test_chunk_size_larger_than_cell_count(self, two_cell_spec):
        self._check(two_cell_spec, jobs=2, chunk_size=64)

    def test_more_jobs_than_cells(self, two_cell_spec):
        self._check(two_cell_spec, jobs=4, chunk_size=1)


class TestStatefulControllers:
    def test_controller_state_never_leaks_between_runs(self, tiny_base):
        # GreedyShedController mutates internal state during a run; the
        # runner pickle-roundtrips every cell, so two sweeps over the
        # same spec -- and the spec's own base config -- stay pristine.
        import dataclasses

        from repro.defense.controllers import GreedyShedController

        controller = GreedyShedController()
        base = dataclasses.replace(
            tiny_base, controllers={"K": controller}
        )
        spec = SweepSpec.grid(base, {}, replicates=2)
        first = run_sweep(spec, jobs=1)
        assert controller._quiet == {}  # caller's instance untouched
        second = run_sweep(spec, jobs=1)
        for a, b in zip(first.results, second.results):
            assert not diff_arrays(result_arrays(a), result_arrays(b))
