"""Zero-copy shared-memory substrates: round-trip, leaks, fallback.

Two invariants matter and both are absolute: attached substrates are
*bit-identical* to locally built ones (shared memory is a transport,
never a source of truth), and every exit path -- clean completion,
SIGINT drain, worker kill, quarantine -- leaves ``/dev/shm`` exactly
as it found it.
"""

import os
import signal

import numpy as np
import pytest

from repro.scenario import (
    diff_arrays,
    result_arrays,
    substrate_arrays,
)
from repro.scenario.engine import build_substrate, simulate
from repro.sweep import (
    CELL_DONE,
    CHAOS_ENV,
    SweepInterrupted,
    SweepSpec,
    attach_substrate,
    export_substrate,
    leaked_segments,
    run_sweep,
)
from repro.sweep.shm import attached_arrays
from repro.util import env


@pytest.fixture(scope="module")
def spec(tiny_base):
    return SweepSpec.grid(tiny_base, {"baseline_days": [3, 7]})


@pytest.fixture(scope="module")
def reference(spec):
    return run_sweep(spec, jobs=1)


def _assert_identical(result, reference):
    assert not result.failures
    for a, b in zip(result.results, reference.results):
        assert not diff_arrays(result_arrays(a), result_arrays(b))


def _assert_no_leak():
    assert leaked_segments() == []


class TestRoundTrip:
    def test_every_manifest_array_bit_identical(self, tiny_base):
        substrate = build_substrate(tiny_base)
        expected = substrate_arrays(substrate)
        handle = export_substrate(substrate)
        try:
            manifest = handle.manifest
            assert {s.name for s in manifest.arrays} == set(expected)
            shm, attached = attach_substrate(manifest)
            views = dict(attached_arrays(manifest, shm))
            assert not diff_arrays(expected, views)
            assert all(
                not view.flags.writeable for view in views.values()
            )
            # The reconstructed substrate aliases the same shared
            # buffers, not private copies.
            assert np.shares_memory(
                attached.vps.lats, views["vps/lats"]
            )
            # The reconstructed substrate's arrays refuse writes at
            # the mutation site -- same contract the sanitizer's
            # freeze enforces.
            with pytest.raises(ValueError):
                attached.vps.lats[0] = 0.0
        finally:
            handle.close()
        _assert_no_leak()

    def test_attached_substrate_simulates_bit_identical(self, tiny_base):
        local = build_substrate(tiny_base)
        want = result_arrays(simulate(tiny_base, local))
        handle = export_substrate(local)
        try:
            _, attached = attach_substrate(handle.manifest)
            got = result_arrays(simulate(tiny_base, attached))
            assert not diff_arrays(got, want)
        finally:
            handle.close()
        _assert_no_leak()

    def test_manifest_digest_ignores_segment_name(self, tiny_base):
        substrate = build_substrate(tiny_base)
        first = export_substrate(substrate)
        second = export_substrate(substrate)
        try:
            assert first.manifest.segment != second.manifest.segment
            assert first.manifest.digest == second.manifest.digest
        finally:
            first.close()
            second.close()
        _assert_no_leak()


class TestSweepUsesSharedMemory:
    def test_clean_run_attaches_and_leaves_no_residue(
        self, spec, reference
    ):
        result = run_sweep(spec, jobs=2, shm=True)
        _assert_identical(result, reference)
        assert result.shm_segments == 1
        assert result.routing_stats.get("shm/cell", 0) == spec.n_cells
        assert result.routing_stats.get("shm/attach", 0) >= 1
        assert "shm/fallback" not in result.routing_stats
        _assert_no_leak()

    def test_worker_rss_telemetry_populated(self, spec):
        result = run_sweep(spec, jobs=2, shm=True)
        assert result.worker_rss_kb
        assert all(rss > 0 for rss in result.worker_rss_kb.values())

    def test_single_use_signatures_not_exported(self, tiny_base):
        # Replicate seeds give every cell a distinct substrate
        # signature (seed is a substrate field): nothing is shared by
        # >= 2 cells, so nothing is exported and workers build
        # locally, in parallel.
        spec = SweepSpec.grid(
            tiny_base, {"baseline_days": [3]}, seeds=(7, 8)
        )
        result = run_sweep(spec, jobs=2, shm=True)
        assert not result.failures
        assert result.shm_segments == 0
        _assert_no_leak()


class TestFallback:
    def test_env_knob_disables_layer(self, spec, reference, monkeypatch):
        monkeypatch.setenv(env.SWEEP_SHM, "0")
        result = run_sweep(spec, jobs=2)
        _assert_identical(result, reference)
        assert result.shm_segments == 0
        assert "shm/cell" not in result.routing_stats
        _assert_no_leak()

    def test_shm_argument_overrides_env(self, spec, reference, monkeypatch):
        monkeypatch.setenv(env.SWEEP_SHM, "0")
        result = run_sweep(spec, jobs=2, shm=True)
        _assert_identical(result, reference)
        assert result.shm_segments == 1

    def test_dead_segment_falls_back_to_local_build(
        self, spec, reference, monkeypatch
    ):
        # Sabotage every exported manifest so workers attach a segment
        # that does not exist: each cell must fall back to a local
        # build, bit-identical, with the fallback counted.
        import repro.sweep.runner as runner_module
        from repro.sweep.shm import export_shared_substrates

        def sabotaged(cells, **kwargs):
            handles, manifests = export_shared_substrates(
                cells, **kwargs
            )
            broken = {
                signature: type(manifest)(
                    segment=manifest.segment + "_gone",
                    digest=manifest.digest,
                    arrays=manifest.arrays,
                    skeleton_offset=manifest.skeleton_offset,
                    skeleton_size=manifest.skeleton_size,
                )
                for signature, manifest in manifests.items()
            }
            return handles, broken

        monkeypatch.setattr(
            runner_module, "export_shared_substrates", sabotaged
        )
        result = run_sweep(spec, jobs=2, shm=True)
        _assert_identical(result, reference)
        assert result.routing_stats.get("shm/fallback", 0) >= 1
        assert "shm/cell" not in result.routing_stats
        _assert_no_leak()


class TestLeakOnEveryExitPath:
    def test_sigint_drain_unlinks_segments(self, spec):
        def interrupt_after_first(event):
            if event.kind == CELL_DONE:
                os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(SweepInterrupted):
            run_sweep(
                spec, jobs=2, shm=True, chunk_size=1,
                progress=interrupt_after_first,
            )
        _assert_no_leak()

    def test_worker_kill_unlinks_segments(
        self, spec, reference, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "kill:cell1@0")
        result = run_sweep(
            spec, jobs=2, shm=True, chunk_size=1, backoff_base_s=0.0
        )
        _assert_identical(result, reference)
        _assert_no_leak()

    def test_quarantine_unlinks_segments(self, spec, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise:cell1@*")
        result = run_sweep(
            spec, jobs=2, shm=True, chunk_size=1,
            max_retries=0, backoff_base_s=0.0,
        )
        assert list(result.failures) == [1]
        _assert_no_leak()
