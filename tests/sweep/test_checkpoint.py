"""Checkpoint WAL: round-trip, torn tails, corruption, idempotence."""

import json

import pytest

from repro.scenario import diff_arrays, result_arrays
from repro.sweep import (
    CheckpointError,
    CheckpointWriter,
    SweepSpec,
    load_checkpoint,
    resume_command,
    run_sweep,
    spec_digest,
)


@pytest.fixture(scope="module")
def spec(tiny_base):
    return SweepSpec.grid(tiny_base, {"baseline_days": [3, 7]})


@pytest.fixture(scope="module")
def reference(spec):
    return run_sweep(spec, jobs=1)


def _write_full(path, spec, reference):
    with CheckpointWriter(path, spec) as writer:
        for cell, result in zip(reference.cells, reference.results):
            writer.record(cell, result)
    return path


class TestRoundTrip:
    def test_all_cells_recovered_bit_identical(
        self, tmp_path, spec, reference
    ):
        path = _write_full(tmp_path / "ckpt.jsonl", spec, reference)
        data = load_checkpoint(path, spec)
        assert sorted(data.results) == list(range(spec.n_cells))
        assert data.dropped_lines == 0
        for index, result in data.results.items():
            assert not diff_arrays(
                result_arrays(result),
                result_arrays(reference.results[index]),
            )

    def test_digest_matches_spec(self, tmp_path, spec, reference):
        path = _write_full(tmp_path / "ckpt.jsonl", spec, reference)
        assert load_checkpoint(path).digest == spec_digest(spec)

    def test_spec_survives_header_round_trip(
        self, tmp_path, spec, reference
    ):
        # The header's pickled spec must digest identically to the
        # original, or --resume would reject its own checkpoint.
        path = _write_full(tmp_path / "ckpt.jsonl", spec, reference)
        data = load_checkpoint(path)
        assert spec_digest(data.spec) == spec_digest(spec)
        assert data.spec == spec


class TestTornAndCorrupt:
    def test_torn_tail_truncated_not_fatal(
        self, tmp_path, spec, reference
    ):
        path = _write_full(tmp_path / "ckpt.jsonl", spec, reference)
        blob = path.read_bytes()
        # Chop the last record mid-line, as a crash mid-write would.
        path.write_bytes(blob[: len(blob) - 40])
        data = load_checkpoint(path, spec)
        assert sorted(data.results) == [0]
        assert data.dropped_lines == 1

    def test_crc_mismatch_truncates_there(
        self, tmp_path, spec, reference
    ):
        path = _write_full(tmp_path / "ckpt.jsonl", spec, reference)
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["crc"] ^= 1
        lines[1] = (json.dumps(record, sort_keys=True) + "\n").encode()
        path.write_bytes(b"".join(lines))
        data = load_checkpoint(path, spec)
        # Bad line 1 drops itself AND the (valid) line after it: in an
        # append-only log everything past the first bad byte is
        # untrusted.
        assert data.results == {}
        assert data.dropped_lines == 2

    def test_wrong_spec_rejected(self, tmp_path, spec, reference):
        path = _write_full(tmp_path / "ckpt.jsonl", spec, reference)
        other = SweepSpec.grid(spec.base, {"baseline_days": [1, 2]})
        with pytest.raises(CheckpointError, match="different sweep spec"):
            load_checkpoint(path, other)

    def test_missing_and_empty_files_raise(self, tmp_path, spec):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        with pytest.raises(CheckpointError, match="empty"):
            load_checkpoint(empty)

    def test_non_checkpoint_file_raises(self, tmp_path):
        junk = tmp_path / "junk.jsonl"
        junk.write_text('{"hello": "world"}\n')
        with pytest.raises(CheckpointError, match="not a version"):
            load_checkpoint(junk)


class TestWriter:
    def test_record_is_idempotent(self, tmp_path, spec, reference):
        path = tmp_path / "ckpt.jsonl"
        with CheckpointWriter(path, spec) as writer:
            cell = reference.cells[0]
            writer.record(cell, reference.results[0])
            size_once = path.stat().st_size
            writer.record(cell, reference.results[0])
            assert path.stat().st_size == size_once
            assert writer.recorded == {0}

    def test_reopen_appends_after_valid_prefix(
        self, tmp_path, spec, reference
    ):
        path = tmp_path / "ckpt.jsonl"
        with CheckpointWriter(path, spec) as writer:
            writer.record(reference.cells[0], reference.results[0])
        # Simulate a torn tail, then reopen: the tail is physically
        # truncated and the second cell appends cleanly after cell 0.
        path.write_bytes(path.read_bytes() + b'{"torn')
        with CheckpointWriter(path, spec) as writer:
            assert writer.recorded == {0}
            writer.record(reference.cells[1], reference.results[1])
        data = load_checkpoint(path, spec)
        assert sorted(data.results) == [0, 1]
        assert data.dropped_lines == 0


class TestResumeCommand:
    def test_includes_path_and_jobs(self):
        cmd = resume_command("/tmp/c.jsonl", jobs=4)
        assert "--resume /tmp/c.jsonl" in cmd
        assert "--jobs 4" in cmd
        assert "--jobs" not in resume_command("/tmp/c.jsonl", jobs=1)
