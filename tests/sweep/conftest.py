"""Shared sweep-test fixtures: one tiny, fast scenario base."""

import pytest

from repro import ScenarioConfig


@pytest.fixture(scope="session")
def tiny_base():
    """Small two-letter scenario; a few hundred ms per simulate."""
    return ScenarioConfig(
        seed=7, n_stubs=50, n_vps=30, letters=("A", "K"),
        include_nl=False,
    )
