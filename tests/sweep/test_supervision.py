"""Supervision: retries, quarantine, timeouts, drain, resume.

Failures are injected with the ``REPRO_SWEEP_CHAOS`` env hook
(:mod:`repro.sweep.chaos`); every healed or resumed run is checked
bit-identical against an uninterrupted ``jobs=1`` reference via
``result_arrays``/``diff_arrays`` -- the whole point of the
supervision layer is that crashes change *nothing* about the output.
"""

import os
import signal

import pytest

from repro.faults import CELL_FAILED
from repro.scenario import diff_arrays, result_arrays
from repro.sweep import (
    CELL_DONE,
    CELL_RESTORED,
    CELL_RETRY,
    CHAOS_ENV,
    ChaosError,
    SweepInterrupted,
    SweepSpec,
    backoff_schedule_s,
    parse_chaos,
    run_sweep,
)


@pytest.fixture(scope="module")
def spec(tiny_base):
    return SweepSpec.grid(tiny_base, {"baseline_days": [3, 7]})


@pytest.fixture(scope="module")
def reference(spec):
    return run_sweep(spec, jobs=1)


def _assert_identical(result, reference):
    assert not result.failures
    for a, b in zip(result.results, reference.results):
        assert not diff_arrays(result_arrays(a), result_arrays(b))


class TestChaosParsing:
    def test_grammar(self):
        action = parse_chaos("stall:cell2@1:30")
        assert (action.action, action.cell_index) == ("stall", 2)
        assert (action.attempt, action.seconds) == (1, 30.0)
        assert parse_chaos("kill:cell3").attempt == 0
        assert parse_chaos("raise:cell1@*").attempt is None
        assert parse_chaos("") is None
        assert parse_chaos(None) is None

    def test_malformed_rejected(self):
        for bad in ("kill", "kill:3", "explode:cell1", "stall:cell2@x"):
            with pytest.raises(ValueError):
                parse_chaos(bad)


class TestBackoff:
    def test_schedule_is_deterministic_and_capped(self):
        assert backoff_schedule_s(0, 0.5) == 0.0
        assert backoff_schedule_s(1, 0.5) == 0.5
        assert backoff_schedule_s(2, 0.5) == 1.0
        assert backoff_schedule_s(3, 0.5) == 2.0
        assert backoff_schedule_s(50, 0.5) == 30.0
        assert backoff_schedule_s(2, 0.0) == 0.0


class TestRetryHeals:
    def test_serial_raise_retries_then_identical(
        self, spec, reference, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "raise:cell1@0")
        events = []
        result = run_sweep(
            spec, jobs=1, progress=events.append, backoff_base_s=0.0
        )
        _assert_identical(result, reference)
        retries = [e for e in events if e.kind == CELL_RETRY]
        assert len(retries) == 1
        assert retries[0].index == 1
        assert retries[0].attempt == 2
        assert "ChaosError" in retries[0].reason
        assert result.attempts[1] == 2

    def test_pool_worker_kill_retries_then_identical(
        self, spec, reference, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "kill:cell1@0")
        events = []
        result = run_sweep(
            spec,
            jobs=2,
            chunk_size=1,
            progress=events.append,
            backoff_base_s=0.0,
        )
        _assert_identical(result, reference)
        assert any(
            e.kind == CELL_RETRY and "worker died" in e.reason
            for e in events
        )

    def test_stalled_cell_times_out_and_retries(
        self, spec, reference, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "stall:cell0@0:60")
        events = []
        result = run_sweep(
            spec,
            jobs=2,
            chunk_size=1,
            cell_timeout_s=5.0,
            progress=events.append,
            backoff_base_s=0.0,
        )
        _assert_identical(result, reference)
        assert any(
            e.kind == CELL_RETRY and "timeout" in e.reason
            for e in events
        )


class TestQuarantine:
    def test_poison_cell_flagged_not_fatal(self, spec, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "raise:cell1@*")
        result = run_sweep(
            spec, jobs=1, max_retries=1, backoff_base_s=0.0
        )
        assert list(result.failures) == [1]
        assert "ChaosError" in result.failures[1]
        assert result.attempts[1] == 2  # 1 try + 1 retry
        assert result.results[1] is None
        with pytest.raises(RuntimeError, match="quarantined"):
            result.result_of(1)
        # Point 1's summary exists but is flagged and metric-less.
        flagged = result.summaries[1]
        assert any(
            f.metric == CELL_FAILED for f in flagged.quality.flags
        )
        assert flagged.metrics == {}
        # The healthy point is untouched.
        assert result.summaries[0].metrics


class TestResume:
    def test_quarantined_run_resumes_bit_identical(
        self, tmp_path, spec, reference, monkeypatch
    ):
        path = tmp_path / "ckpt.jsonl"
        monkeypatch.setenv(CHAOS_ENV, "raise:cell1@*")
        first = run_sweep(
            spec,
            jobs=1,
            checkpoint=path,
            max_retries=0,
            backoff_base_s=0.0,
        )
        assert list(first.failures) == [1]
        # The healthy cell is durable; the chaos is gone on resume
        # (fixed code, in real life) and only cell 1 re-runs.
        monkeypatch.delenv(CHAOS_ENV)
        events = []
        resumed = run_sweep(
            spec, jobs=1, checkpoint=path, progress=events.append
        )
        assert resumed.restored == (0,)
        assert [
            e.index for e in events if e.kind == CELL_RESTORED
        ] == [0]
        assert [
            e.index for e in events if e.kind == CELL_DONE
        ] == [1]
        _assert_identical(resumed, reference)

    def test_sigint_drains_then_resumes_bit_identical(
        self, tmp_path, spec, reference
    ):
        path = tmp_path / "ckpt.jsonl"

        def interrupt_after_first(event):
            if event.kind == CELL_DONE:
                os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep(
                spec, jobs=1, checkpoint=path,
                progress=interrupt_after_first,
            )
        assert excinfo.value.signal_name == "SIGINT"
        assert excinfo.value.completed == 1
        assert "--resume" in str(excinfo.value)

        resumed = run_sweep(spec, jobs=1, checkpoint=path)
        assert len(resumed.restored) == 1
        _assert_identical(resumed, reference)


class TestSharedMemorySupervision:
    def test_pool_kill_respawn_reattaches_bit_identical(
        self, spec, reference, monkeypatch
    ):
        # Kill a worker mid-run with segments exported: the respawned
        # pool's workers must reattach the *same* segments (the parent
        # owns them across respawns) and the healed run stays
        # bit-identical.
        monkeypatch.setenv(CHAOS_ENV, "kill:cell1@0")
        events = []
        result = run_sweep(
            spec,
            jobs=2,
            chunk_size=1,
            shm=True,
            progress=events.append,
            backoff_base_s=0.0,
        )
        _assert_identical(result, reference)
        assert any(
            e.kind == CELL_RETRY and "worker died" in e.reason
            for e in events
        )
        assert result.shm_segments == 1
        # Both completed cells were served from shared substrates, and
        # at least two attaches happened: the original pool's and the
        # respawned pool's (fresh processes never inherit a mapping).
        assert result.routing_stats.get("shm/cell", 0) == spec.n_cells
        assert result.routing_stats.get("shm/attach", 0) >= 2
        assert "shm/fallback" not in result.routing_stats

    def test_pickled_control_matches_shm_healed_run(
        self, spec, reference, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "kill:cell1@0")
        result = run_sweep(
            spec,
            jobs=2,
            chunk_size=1,
            shm=False,
            backoff_base_s=0.0,
        )
        _assert_identical(result, reference)
        assert result.shm_segments == 0
        assert "shm/cell" not in result.routing_stats


class TestProgressTelemetry:
    def test_done_events_carry_pid_and_attempt(self, spec):
        events = []
        result = run_sweep(spec, jobs=2, progress=events.append)
        done = [e for e in events if e.kind == CELL_DONE]
        assert len(done) == spec.n_cells
        assert all(isinstance(e.worker_pid, int) for e in done)
        assert all(e.attempt == 1 for e in done)
        assert result.routing_stats  # per-worker counters summed
