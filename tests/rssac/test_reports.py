"""Tests for RSSAC-002 report modelling."""

import numpy as np
import pytest

from repro.rootdns import letter_spec
from repro.rssac import (
    DailyReport,
    DayAccumulator,
    build_baseline_report,
    build_daily_report,
    size_bin,
)


class TestSizeBins:
    def test_16_byte_bins(self):
        assert size_bin(0) == 0
        assert size_bin(15.9) == 0
        assert size_bin(16) == 16
        assert size_bin(44) == 32

    def test_attack_query_bins_match_paper(self):
        # Section 3.1: Nov 30 queries fell in the 32-47 B bin and
        # Dec 1 queries in the 16-31 B bin (DNS payload sizes).
        from repro.dns import make_query

        nov30 = make_query(0, "www.336901.com.").wire_size
        dec1 = make_query(0, "www.916yy.com.").wire_size
        assert size_bin(nov30) == 32
        assert size_bin(dec1) == 16

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            size_bin(-1)


class TestDailyReport:
    def test_mean_rates(self):
        report = DailyReport(
            letter="K", date="2015-11-30",
            queries=86_400.0 * 2, responses=86_400.0, unique_sources=10.0,
        )
        assert report.mean_qps == pytest.approx(2.0)
        assert report.mean_rps == pytest.approx(1.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            DailyReport(letter="K", date="x", queries=-1,
                        responses=0, unique_sources=0)

    def test_dominant_bin(self):
        report = DailyReport(
            letter="K", date="x", queries=1, responses=1,
            unique_sources=1,
            query_size_hist={32: 100.0, 48: 5.0},
        )
        assert report.dominant_query_bin() == 32


class TestBuildReports:
    def test_baseline_report_near_base_rate(self):
        spec = letter_spec("K")
        report = build_baseline_report(
            spec, "2015-11-23", np.random.default_rng(1)
        )
        assert report.mean_qps == pytest.approx(spec.baseline_qps, rel=0.05)
        # No attack bin on a quiet day; baseline traffic sits in the
        # 48-63 B bin, away from the events' short fixed names.
        assert report.dominant_query_bin() == 48

    def test_event_day_shows_attack_bin(self):
        spec = letter_spec("K")
        acc = DayAccumulator()
        acc.add_bin(
            legit_accepted=40_000, spill_accepted=0.0,
            attack_accepted=2_000_000, bin_seconds=9600,
            attack_query_payload=32, attack_response_payload=454,
        )
        report = build_daily_report(
            spec, "2015-11-30", acc, duplicate_ratio=0.68,
            spoof_pool_size=2**31,
        )
        assert report.dominant_query_bin() == 32

    def test_capture_fraction_discounts_queries(self):
        spec = letter_spec("K")  # capture fraction < 1
        acc = DayAccumulator()
        acc.add_bin(40_000, 0.0, 1_000_000, 9600, 32, 454)
        report = build_daily_report(
            spec, "2015-11-30", acc, duplicate_ratio=0.0,
            spoof_pool_size=2**31,
        )
        attack_counted = report.queries - acc.legit_queries
        assert attack_counted == pytest.approx(
            acc.attack_accepted * spec.rssac_capture_fraction
        )

    def test_rrl_suppresses_attack_responses(self):
        spec = letter_spec("A")  # full capture
        acc = DayAccumulator()
        acc.add_bin(0.0, 0.0, 1_000_000, 9600, 32, 454)
        report = build_daily_report(
            spec, "2015-11-30", acc, duplicate_ratio=0.68,
            spoof_pool_size=2**31,
        )
        # ~61 % of attack responses suppressed (section 2.3's ~60 %).
        assert report.responses / report.queries == pytest.approx(
            1 - 0.612, abs=0.02
        )

    def test_letter_flips_raise_uniques(self):
        # Unattacked L sees extra resolvers during the events
        # (section 3.2.2's 6-13x unique-IP jump).
        spec = letter_spec("L")
        quiet = DayAccumulator()
        quiet.add_bin(spec.baseline_qps, 0.0, 0.0, 86_400)
        busy = DayAccumulator()
        busy.add_bin(spec.baseline_qps, 100_000.0, 0.0, 86_400)
        quiet_report = build_daily_report(
            spec, "2015-11-30", quiet, 0.0, 2**31
        )
        busy_report = build_daily_report(
            spec, "2015-11-30", busy, 0.0, 2**31
        )
        assert busy_report.unique_sources > 5 * quiet_report.unique_sources
        assert busy_report.queries > quiet_report.queries


class TestScenarioReports:
    def test_nine_reports_per_letter(self, scenario):
        for letter in scenario.letters:
            assert len(scenario.rssac[letter]) == 9

    def test_attacked_reporters_spike_on_event_days(self, scenario):
        reports = scenario.rssac["A"]
        baseline = np.mean([r.queries for r in reports[:7]])
        event_day = reports[7]
        assert event_day.queries > 10 * baseline

    def test_unattacked_letter_sees_flip_bump(self, scenario):
        reports = scenario.rssac["L"]
        baseline = np.mean([r.queries for r in reports[:7]])
        assert reports[7].queries > baseline * 1.01
        assert reports[7].unique_sources > reports[0].unique_sources * 2
