"""Tests for RSSAC-002 YAML serialisation."""

import pytest

from repro.rssac import (
    documents_to_report,
    load_reports,
    report_to_documents,
    save_reports,
)


class TestRoundTrip:
    def test_documents_roundtrip(self, scenario):
        report = scenario.rssac["K"][7]  # the Nov 30 event day
        rebuilt = documents_to_report(report_to_documents(report))
        assert rebuilt.letter == "K"
        assert rebuilt.date == report.date
        assert rebuilt.queries == pytest.approx(report.queries)
        assert rebuilt.unique_sources == pytest.approx(
            report.unique_sources
        )
        assert rebuilt.query_size_hist.keys() == (
            report.query_size_hist.keys()
        )

    def test_file_roundtrip(self, scenario, tmp_path):
        reports = list(scenario.rssac["A"])
        path = tmp_path / "a-root.yaml"
        count = save_reports(reports, path)
        assert count == len(reports)
        loaded = load_reports(path)
        assert len(loaded) == len(reports)
        by_date = {r.date: r for r in loaded}
        for report in reports:
            assert by_date[report.date].queries == pytest.approx(
                report.queries
            )

    def test_missing_metric_rejected(self, scenario):
        docs = report_to_documents(scenario.rssac["K"][0])[:2]
        with pytest.raises(ValueError, match="missing metrics"):
            documents_to_report(docs)

    def test_bad_version_rejected(self, scenario):
        docs = report_to_documents(scenario.rssac["K"][0])
        docs[0]["version"] = "rssac002v99"
        with pytest.raises(ValueError, match="version"):
            documents_to_report(docs)

    def test_yaml_shape(self, scenario):
        docs = report_to_documents(scenario.rssac["K"][7])
        metrics = {d["metric"] for d in docs}
        assert metrics == {
            "traffic-volume", "traffic-sizes", "unique-sources",
        }
        assert all(
            d["service"] == "k.root-servers.net" for d in docs
        )
