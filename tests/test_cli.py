"""Tests for the anycast-ddos command-line interface."""

import pytest

from repro.cli import ANALYSES, build_parser, main
from repro.datasets import load_dataset


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.preset == "nov2015"
        assert args.out == "events.npz"

    def test_letters_parsing(self):
        args = build_parser().parse_args(
            ["simulate", "--letters", "b, k"]
        )
        assert args.letters == "b, k"

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "x.npz", "--figure", "fig99"]
            )


class TestCommands:
    def test_policies_command(self, capsys):
        assert main(["policies", "--attack", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "case 2" in out
        assert "H = 4/4" in out

    def test_simulate_then_analyze(self, tmp_path, capsys):
        out = tmp_path / "mini.npz"
        assert main([
            "simulate", "--stubs", "100", "--vps", "60",
            "--letters", "B,K", "--seed", "2", "--out", str(out),
        ]) == 0
        dataset = load_dataset(out)
        assert sorted(dataset.letters) == ["B", "K"]

        assert main(["analyze", str(out), "--figure", "fig3"]) == 0
        rendered = capsys.readouterr().out
        assert "Fig. 3" in rendered
        assert "B" in rendered

    def test_analyze_raw_skips_cleaning(self, tmp_path, capsys):
        out = tmp_path / "mini.npz"
        main([
            "simulate", "--stubs", "100", "--vps", "60",
            "--letters", "K", "--seed", "2", "--out", str(out),
        ])
        capsys.readouterr()
        assert main([
            "analyze", str(out), "--figure", "table2", "--raw",
        ]) == 0
        output = capsys.readouterr()
        assert "cleaned" not in output.err
        assert "Table 2" in output.out

    def test_june_preset(self, tmp_path):
        out = tmp_path / "june.npz"
        assert main([
            "simulate", "--preset", "june2016", "--stubs", "100",
            "--vps", "60", "--letters", "K", "--out", str(out),
        ]) == 0
        dataset = load_dataset(out)
        assert dataset.grid.start != 1448841600  # not the 2015 window

    @pytest.mark.parametrize("figure", ANALYSES)
    def test_every_analysis_renders(self, tmp_path, capsys, figure):
        out = tmp_path / "mini.npz"
        main([
            "simulate", "--stubs", "120", "--vps", "80",
            "--seed", "2", "--out", str(out),
        ])
        capsys.readouterr()
        assert main(["analyze", str(out), "--figure", figure]) == 0
        assert capsys.readouterr().out.strip()

    def test_sweep_writes_summary_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "summaries.json"
        assert main([
            "sweep", "--stubs", "50", "--vps", "30", "--seed", "7",
            "--letters", "A,K", "--axis", "baseline_days=3,7",
            "--replicates", "2", "--jobs", "1", "--quiet",
            "--out", str(out),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["n_points"] == 2
        assert payload["n_seeds"] == 2
        assert len(payload["summaries"]) == 2
        metrics = payload["summaries"][0]["metrics"]
        assert metrics["availability"]["n"] == 2

    def test_sweep_axis_parsing(self):
        from repro.cli import _parse_axis

        name, values = _parse_axis("baseline_days=3,7")
        assert name == "baseline_days"
        assert values == [3, 7]
        name, values = _parse_axis("include_nl=True,False")
        assert values == [True, False]

    def test_gen_topo_round_trips(self, tmp_path, capsys):
        from repro.netsim.topology import load_as_rel2

        out = tmp_path / "topo.as-rel2"
        assert main([
            "gen-topo", "--ases", "300", "--seed", "5",
            "--out", str(out),
        ]) == 0
        assert "300 ASes" in capsys.readouterr().err
        graph = load_as_rel2(out)
        assert len(graph) == 300
        # Regenerating with the same seed is byte-identical.
        again = tmp_path / "again.as-rel2"
        main(["gen-topo", "--ases", "300", "--seed", "5",
              "--out", str(again)])
        assert again.read_bytes() == out.read_bytes()
