"""Shared fixtures: one full scenario simulated once per test session."""

import pytest

from repro import ScenarioConfig, simulate


@pytest.fixture(scope="session")
def scenario():
    """A full 13-letter scenario, sized to run in a few seconds."""
    return simulate(ScenarioConfig(seed=7, n_stubs=500, n_vps=900))


@pytest.fixture(scope="session")
def dataset(scenario):
    """The scenario's (uncleaned) Atlas dataset."""
    return scenario.atlas
