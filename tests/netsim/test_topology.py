"""Tests for the synthetic Internet topology builder."""

import numpy as np
import pytest

from repro.netsim import (
    AsRelTopologyConfig,
    AsRole,
    Origin,
    Scope,
    TopologyConfig,
    build_internet_graph,
    build_topology,
    dump_as_rel2,
    generate_as_rel2,
    load_as_rel2,
    propagate,
)
from repro.util import airport


@pytest.fixture(scope="module")
def topo():
    config = TopologyConfig(n_stubs=120)
    return build_topology(config, np.random.default_rng(7))


class TestConfig:
    def test_rejects_zero_stubs(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_stubs=0)

    def test_rejects_bad_multihome(self):
        with pytest.raises(ValueError):
            TopologyConfig(multihome_fraction=1.5)

    def test_rejects_unnormalised_weights(self):
        with pytest.raises(ValueError):
            TopologyConfig(region_weights={"EU": 0.5})


class TestBuild:
    def test_counts(self, topo):
        assert len(topo.transit_asns) == 21
        assert len(topo.stub_asns) == 120
        assert len(topo.graph) == 141

    def test_core_is_full_mesh(self, topo):
        n = len(topo.transit_asns)
        for asn in topo.transit_asns:
            assert len(topo.graph.peers(asn)) == n - 1

    def test_stubs_have_providers_only(self, topo):
        for asn in topo.stub_asns:
            assert topo.graph.providers(asn)
            assert not topo.graph.customers(asn)

    def test_stub_regions_biased_to_europe(self):
        config = TopologyConfig(n_stubs=600)
        topo = build_topology(config, np.random.default_rng(0))
        europe = sum(
            1
            for asn in topo.stub_asns
            if topo.graph.node(asn).name.startswith("stub-EU")
        )
        assert 0.5 < europe / len(topo.stub_asns) < 0.75

    def test_deterministic_for_seed(self):
        config = TopologyConfig(n_stubs=50)
        a = build_topology(config, np.random.default_rng(3))
        b = build_topology(config, np.random.default_rng(3))
        locs_a = [
            (n.location.lat, n.location.lon) for n in a.graph.nodes()
        ]
        locs_b = [
            (n.location.lat, n.location.lon) for n in b.graph.nodes()
        ]
        assert locs_a == locs_b

    def test_nearest_transits_sorted_by_distance(self, topo):
        ams = airport("AMS").location
        nearest = topo.nearest_transits(ams, k=3)
        names = [topo.graph.node(asn).name for asn in nearest]
        assert names[0] == "transit-AMS"


class TestSiteHosts:
    def test_global_site_dual_homed(self, topo):
        asn = topo.add_site_host("X-AMS", airport("AMS").location, Scope.GLOBAL)
        assert len(topo.graph.providers(asn)) == 2
        assert topo.graph.node(asn).role is AsRole.SITE_HOST

    def test_local_site_peers_with_nearby_stubs(self, topo):
        asn = topo.add_site_host("X-FRA", airport("FRA").location, Scope.LOCAL)
        assert len(topo.graph.providers(asn)) == 1
        # Europe-biased stubs guarantee some IXP peers near Frankfurt.
        assert topo.graph.peers(asn)

    def test_duplicate_site_rejected(self, topo):
        topo.add_site_host("X-LHR", airport("LHR").location, Scope.GLOBAL)
        with pytest.raises(ValueError):
            topo.add_site_host("X-LHR", airport("LHR").location, Scope.GLOBAL)


class TestEndToEndCatchments:
    def test_catchments_are_geographic(self):
        """An EU and a US site split stubs roughly along geography."""
        config = TopologyConfig(n_stubs=200)
        topo = build_topology(config, np.random.default_rng(11))
        ams = topo.add_site_host("T-AMS", airport("AMS").location, Scope.GLOBAL)
        iad = topo.add_site_host("T-IAD", airport("IAD").location, Scope.GLOBAL)
        table = propagate(
            topo.graph,
            [
                Origin(site="T-AMS", asn=ams, location=airport("AMS").location),
                Origin(site="T-IAD", asn=iad, location=airport("IAD").location),
            ],
        )
        catchments = table.catchments()
        # Every stub is served.
        served = set()
        for asns in catchments.values():
            served |= asns
        assert set(topo.stub_asns) <= served
        # European stubs overwhelmingly reach the Amsterdam site.
        eu_stubs = [
            asn
            for asn in topo.stub_asns
            if topo.graph.node(asn).name.startswith("stub-EU")
        ]
        to_ams = sum(
            1 for asn in eu_stubs if table.site_of(asn) == "T-AMS"
        )
        assert to_ams / len(eu_stubs) > 0.9


class TestAsRel2:
    """The internet-scale as-rel2 generator, dumper, and loader."""

    @pytest.fixture(scope="class")
    def internet(self):
        config = AsRelTopologyConfig(n_ases=800, seed=3)
        return build_internet_graph(config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AsRelTopologyConfig(n_ases=10, clique_size=12)
        with pytest.raises(ValueError):
            AsRelTopologyConfig(clique_size=1)
        with pytest.raises(ValueError):
            AsRelTopologyConfig(multihome_fraction=1.5)
        with pytest.raises(ValueError):
            AsRelTopologyConfig(peer_degree=-0.1)

    def test_link_lists_deterministic_in_seed(self):
        config = AsRelTopologyConfig(n_ases=400, seed=9)
        assert generate_as_rel2(config) == generate_as_rel2(config)
        other = AsRelTopologyConfig(n_ases=400, seed=10)
        assert generate_as_rel2(config) != generate_as_rel2(other)

    def test_clique_is_peer_mesh(self, internet):
        clique = range(1, 13)
        for a in clique:
            peers = set(internet.peers(a))
            assert {b for b in clique if b != a} <= peers

    def test_every_non_clique_as_has_a_provider(self, internet):
        for asn in internet.asns:
            if asn > 12:
                assert internet.providers(asn), asn

    def test_roles_follow_customer_count(self, internet):
        for asn in internet.asns:
            has_customers = bool(internet.customers(asn))
            is_transit = internet.node(asn).role is AsRole.TRANSIT
            assert is_transit == has_customers, asn

    def test_dump_load_round_trip(self, internet, tmp_path):
        path = tmp_path / "topo.as-rel2"
        dump_as_rel2(internet, path)
        loaded = load_as_rel2(path)
        assert sorted(loaded.asns) == sorted(internet.asns)
        for asn in internet.asns:
            assert sorted(loaded.providers(asn)) == sorted(
                internet.providers(asn)
            )
            assert sorted(loaded.peers(asn)) == sorted(internet.peers(asn))
            assert loaded.node(asn).role is internet.node(asn).role
            assert loaded.node(asn).location == internet.node(asn).location

    def test_load_tolerates_caida_source_field(self, tmp_path):
        path = tmp_path / "caida.as-rel2"
        path.write_text("# comment\n1|2|-1|bgp\n2|3|0|mlp\n")
        graph = load_as_rel2(path)
        assert graph.providers(2) == [1]
        assert graph.peers(2) == [3]

    def test_load_rejects_bad_relationship(self, tmp_path):
        path = tmp_path / "bad.as-rel2"
        path.write_text("1|2|7\n")
        with pytest.raises(ValueError, match="unknown relationship"):
            load_as_rel2(path)

    def test_propagation_reaches_whole_graph(self, internet):
        table = propagate(
            internet,
            [Origin(site="S1", asn=1, scope=Scope.GLOBAL)],
        )
        assert table.reachable_asns() == set(internet.asns)
