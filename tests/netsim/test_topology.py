"""Tests for the synthetic Internet topology builder."""

import numpy as np
import pytest

from repro.netsim import (
    AsRole,
    Origin,
    Scope,
    TopologyConfig,
    build_topology,
    propagate,
)
from repro.util import airport


@pytest.fixture(scope="module")
def topo():
    config = TopologyConfig(n_stubs=120)
    return build_topology(config, np.random.default_rng(7))


class TestConfig:
    def test_rejects_zero_stubs(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_stubs=0)

    def test_rejects_bad_multihome(self):
        with pytest.raises(ValueError):
            TopologyConfig(multihome_fraction=1.5)

    def test_rejects_unnormalised_weights(self):
        with pytest.raises(ValueError):
            TopologyConfig(region_weights={"EU": 0.5})


class TestBuild:
    def test_counts(self, topo):
        assert len(topo.transit_asns) == 21
        assert len(topo.stub_asns) == 120
        assert len(topo.graph) == 141

    def test_core_is_full_mesh(self, topo):
        n = len(topo.transit_asns)
        for asn in topo.transit_asns:
            assert len(topo.graph.peers(asn)) == n - 1

    def test_stubs_have_providers_only(self, topo):
        for asn in topo.stub_asns:
            assert topo.graph.providers(asn)
            assert not topo.graph.customers(asn)

    def test_stub_regions_biased_to_europe(self):
        config = TopologyConfig(n_stubs=600)
        topo = build_topology(config, np.random.default_rng(0))
        europe = sum(
            1
            for asn in topo.stub_asns
            if topo.graph.node(asn).name.startswith("stub-EU")
        )
        assert 0.5 < europe / len(topo.stub_asns) < 0.75

    def test_deterministic_for_seed(self):
        config = TopologyConfig(n_stubs=50)
        a = build_topology(config, np.random.default_rng(3))
        b = build_topology(config, np.random.default_rng(3))
        locs_a = [
            (n.location.lat, n.location.lon) for n in a.graph.nodes()
        ]
        locs_b = [
            (n.location.lat, n.location.lon) for n in b.graph.nodes()
        ]
        assert locs_a == locs_b

    def test_nearest_transits_sorted_by_distance(self, topo):
        ams = airport("AMS").location
        nearest = topo.nearest_transits(ams, k=3)
        names = [topo.graph.node(asn).name for asn in nearest]
        assert names[0] == "transit-AMS"


class TestSiteHosts:
    def test_global_site_dual_homed(self, topo):
        asn = topo.add_site_host("X-AMS", airport("AMS").location, Scope.GLOBAL)
        assert len(topo.graph.providers(asn)) == 2
        assert topo.graph.node(asn).role is AsRole.SITE_HOST

    def test_local_site_peers_with_nearby_stubs(self, topo):
        asn = topo.add_site_host("X-FRA", airport("FRA").location, Scope.LOCAL)
        assert len(topo.graph.providers(asn)) == 1
        # Europe-biased stubs guarantee some IXP peers near Frankfurt.
        assert topo.graph.peers(asn)

    def test_duplicate_site_rejected(self, topo):
        topo.add_site_host("X-LHR", airport("LHR").location, Scope.GLOBAL)
        with pytest.raises(ValueError):
            topo.add_site_host("X-LHR", airport("LHR").location, Scope.GLOBAL)


class TestEndToEndCatchments:
    def test_catchments_are_geographic(self):
        """An EU and a US site split stubs roughly along geography."""
        config = TopologyConfig(n_stubs=200)
        topo = build_topology(config, np.random.default_rng(11))
        ams = topo.add_site_host("T-AMS", airport("AMS").location, Scope.GLOBAL)
        iad = topo.add_site_host("T-IAD", airport("IAD").location, Scope.GLOBAL)
        table = propagate(
            topo.graph,
            [
                Origin(site="T-AMS", asn=ams, location=airport("AMS").location),
                Origin(site="T-IAD", asn=iad, location=airport("IAD").location),
            ],
        )
        catchments = table.catchments()
        # Every stub is served.
        served = set()
        for asns in catchments.values():
            served |= asns
        assert set(topo.stub_asns) <= served
        # European stubs overwhelmingly reach the Amsterdam site.
        eu_stubs = [
            asn
            for asn in topo.stub_asns
            if topo.graph.node(asn).name.startswith("stub-EU")
        ]
        to_ams = sum(
            1 for asn in eu_stubs if table.site_of(asn) == "T-AMS"
        )
        assert to_ams / len(eu_stubs) > 0.9
