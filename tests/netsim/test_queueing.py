"""Tests for the overload (loss + bufferbloat latency) model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim import OverloadModel


@pytest.fixture
def model():
    return OverloadModel(service_ms=0.5, buffer_ms=1800.0, loss_knee=0.95)


class TestLoss:
    def test_no_loss_at_low_load(self, model):
        assert model.loss_fraction(1000, 100_000) == 0.0

    def test_loss_at_saturation_matches_excess(self, model):
        # At 2x capacity, half the queries must be dropped.
        assert model.loss_fraction(200_000, 100_000) == pytest.approx(0.5)

    def test_deep_overload_loses_nearly_everything(self, model):
        # The paper's 100x normal load against a small site.
        loss = model.loss_fraction(10_000_000, 100_000)
        assert loss == pytest.approx(0.99)

    def test_loss_monotone_in_load(self, model):
        loads = np.linspace(0, 1_000_000, 200)
        _, losses, _ = model.evaluate(loads, np.full_like(loads, 100_000.0))
        assert (np.diff(losses) >= -1e-12).all()

    @given(
        rho=st.floats(min_value=0, max_value=1000),
    )
    def test_loss_bounded(self, rho):
        loss = OverloadModel().loss_fraction(rho * 1000, 1000)
        assert 0.0 <= loss <= 1.0


class TestDelay:
    def test_negligible_delay_at_low_load(self, model):
        assert model.queue_delay_ms(1000, 100_000) < 1.0

    def test_bufferbloat_at_overload(self, model):
        # Fig. 7: overloaded K-Root sites showed RTTs of 1-2 seconds.
        delay = model.queue_delay_ms(500_000, 100_000)
        assert 1000.0 <= delay <= 1800.0

    def test_delay_capped_by_buffer(self, model):
        assert model.queue_delay_ms(10**9, 1) <= model.buffer_ms

    def test_delay_monotone_in_load(self, model):
        loads = np.linspace(0, 2_000_000, 500)
        _, _, delays = model.evaluate(loads, np.full_like(loads, 100_000.0))
        assert (np.diff(delays) >= -1e-9).all()

    def test_deeper_overload_higher_delay(self, model):
        shallow = model.queue_delay_ms(150_000, 100_000)
        deep = model.queue_delay_ms(1_000_000, 100_000)
        assert deep > shallow


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OverloadModel(service_ms=0)
        with pytest.raises(ValueError):
            OverloadModel(buffer_ms=-1)
        with pytest.raises(ValueError):
            OverloadModel(loss_knee=0.3)

    def test_rejects_negative_load(self, model):
        with pytest.raises(ValueError):
            model.loss_fraction(-1, 100)

    def test_rejects_zero_capacity(self, model):
        with pytest.raises(ValueError):
            model.loss_fraction(1, 0)

    def test_vectorised_validation(self, model):
        with pytest.raises(ValueError):
            model.evaluate(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            model.evaluate(np.array([1.0]), np.array([0.0]))


class TestEdgeCases:
    """Boundary behaviour the fault machinery leans on."""

    def test_near_zero_capacity_black_holes(self, model):
        # A failed site (repro.faults) keeps a 1e-6 residual capacity:
        # the positive-capacity invariant holds and essentially every
        # query is lost at the buffer ceiling.
        capacity = 100_000.0 * 1e-6
        loss = model.loss_fraction(50_000.0, capacity)
        delay = model.queue_delay_ms(50_000.0, capacity)
        assert 0.999 < loss < 1.0
        assert model.buffer_ms * 0.999 < delay <= model.buffer_ms

    def test_near_zero_capacity_no_load_no_loss(self, model):
        assert model.loss_fraction(0.0, 1e-6) == 0.0

    def test_loss_zero_exactly_at_knee(self, model):
        # The early-loss ramp opens strictly above the knee.
        capacity = 100_000.0
        assert model.loss_fraction(model.loss_knee * capacity, capacity) == 0.0
        assert model.loss_fraction(
            (model.loss_knee + 1e-6) * capacity, capacity
        ) > 0.0

    def test_utilisation_exactly_at_overload_rho(self, model):
        # The engine flags a site overloaded only strictly above
        # OVERLOAD_RHO; at exactly that utilisation the model yields
        # the saturation loss and the flag stays off.  Just past
        # saturation the excess-traffic formula (1 - 1/rho) still sits
        # below the early-loss ramp's endpoint, so the loss is floored
        # at EARLY_LOSS_MAX to stay monotone in load.
        from repro.netsim.queueing import EARLY_LOSS_MAX
        from repro.scenario.engine import OVERLOAD_RHO

        capacity = 100_000.0
        rho, loss, _ = model.evaluate(
            np.array([OVERLOAD_RHO * capacity]), np.array([capacity])
        )
        assert rho[0] == pytest.approx(OVERLOAD_RHO)
        assert not (rho > OVERLOAD_RHO).any()
        assert 1.0 - 1.0 / OVERLOAD_RHO < EARLY_LOSS_MAX
        assert loss[0] == pytest.approx(EARLY_LOSS_MAX)

    def test_loss_monotone_through_saturation(self, model):
        # The dense sweep that used to dip: ramp endpoint vs the start
        # of the excess-traffic branch, around rho in [0.99, 1.06].
        rhos = np.linspace(0.95, 1.2, 50_001)
        losses = model._loss_from_rho(rhos)
        assert (np.diff(losses) >= 0.0).all()

    def test_loss_clipped_to_unit_interval(self, model):
        rhos = np.array([0.0, 0.95, 0.999999, 1.0, 1e9, np.inf])
        losses = model._loss_from_rho(rhos)
        assert (losses >= 0.0).all()
        assert (losses <= 1.0).all()
        assert losses[-1] == 1.0  # infinite overload loses everything

    def test_delay_never_exceeds_buffer(self, model):
        rhos = np.array([0.0, 0.5, 0.95, 0.99, 1.0, 100.0, 1e12])
        delays = model._delay_from_rho(rhos)
        assert (delays <= model.buffer_ms).all()
        assert (delays >= 0.0).all()


class TestVectorised:
    def test_matches_scalar(self, model):
        offered = np.array([0.0, 50_000.0, 99_000.0, 150_000.0, 10**7])
        capacity = np.full_like(offered, 100_000.0)
        rho, loss, delay = model.evaluate(offered, capacity)
        for i in range(len(offered)):
            assert rho[i] == pytest.approx(offered[i] / 100_000.0)
            assert loss[i] == pytest.approx(
                model.loss_fraction(offered[i], 100_000.0)
            )
            assert delay[i] == pytest.approx(
                model.queue_delay_ms(offered[i], 100_000.0)
            )
