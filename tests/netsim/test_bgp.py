"""Tests for valley-free BGP propagation and anycast catchments."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    ASGraph,
    AsNode,
    Origin,
    Relationship,
    Route,
    RouteClass,
    RoutingTable,
    Scope,
    propagate,
    propagate_reference,
)
from repro.util import Location

#: Both propagation implementations: the array kernel and the scalar
#: reference.  Behavior-level tests run against each, so a divergence
#: shows up as a per-implementation failure, not only in the
#: bit-equivalence property test.
IMPLEMENTATIONS = [propagate, propagate_reference]
IMPL_IDS = ["kernel", "reference"]


def _node(asn, lat=0.0, lon=0.0):
    return AsNode(asn=asn, location=Location(lat, lon))


def _chain_graph():
    """origin 1 -cust-> 2 (transit) -peer- 3 (transit) <-cust- 4 (stub)."""
    graph = ASGraph()
    for asn in (1, 2, 3, 4):
        graph.add_as(_node(asn))
    graph.add_link(1, 2, Relationship.PROVIDER)
    graph.add_link(2, 3, Relationship.PEER)
    graph.add_link(4, 3, Relationship.PROVIDER)
    return graph


class TestPropagation:
    def test_origin_routes_to_itself(self):
        graph = _chain_graph()
        table = propagate(graph, [Origin(site="X", asn=1)])
        route = table.route(1)
        assert route.path == (1,)
        assert route.route_class is RouteClass.CUSTOMER

    def test_route_classes_along_chain(self):
        graph = _chain_graph()
        table = propagate(graph, [Origin(site="X", asn=1)])
        assert table.route(2).route_class is RouteClass.CUSTOMER
        assert table.route(3).route_class is RouteClass.PEER
        assert table.route(4).route_class is RouteClass.PROVIDER
        assert table.route(4).path == (1, 2, 3, 4)

    def test_peer_route_not_reexported_to_peer(self):
        # 1 -> 2 -peer- 3 -peer- 5: AS 5 must NOT learn via two peer hops.
        graph = _chain_graph()
        graph.add_as(_node(5))
        graph.add_link(3, 5, Relationship.PEER)
        table = propagate(graph, [Origin(site="X", asn=1)])
        assert table.route(5) is None

    def test_provider_route_not_exported_uphill(self):
        # 4 learns from its provider 3; 4's other provider 6 must not
        # learn the route from 4.
        graph = _chain_graph()
        graph.add_as(_node(6))
        graph.add_link(4, 6, Relationship.PROVIDER)
        table = propagate(graph, [Origin(site="X", asn=1)])
        assert table.route(6) is None

    def test_customer_route_preferred_over_peer(self):
        # Transit 3 can reach site A via its customer 7 or site B via
        # its peer 2; the customer route must win even if longer.
        graph = _chain_graph()
        graph.add_as(_node(7))
        graph.add_as(_node(8))
        graph.add_link(7, 3, Relationship.PROVIDER)
        graph.add_link(8, 7, Relationship.PROVIDER)
        table = propagate(
            graph,
            [Origin(site="B", asn=1), Origin(site="A", asn=8)],
        )
        route = table.route(3)
        assert route.site == "A"
        assert route.route_class is RouteClass.CUSTOMER
        assert route.path == (8, 7, 3)

    def test_shorter_path_wins_within_class(self):
        graph = ASGraph()
        for asn in (1, 2, 3, 4):
            graph.add_as(_node(asn))
        # Both origins are customers reachable uphill of 4's provider
        # chain; origin 1 is two hops, origin 3 is one hop.
        graph.add_link(1, 2, Relationship.PROVIDER)
        graph.add_link(2, 4, Relationship.PROVIDER)
        graph.add_link(3, 4, Relationship.PROVIDER)
        table = propagate(
            graph, [Origin(site="FAR", asn=1), Origin(site="NEAR", asn=3)]
        )
        assert table.route(4).site == "NEAR"

    def test_geo_tiebreak_prefers_nearby_origin(self):
        graph = ASGraph()
        graph.add_as(_node(1, lat=0, lon=0))     # origin west
        graph.add_as(_node(2, lat=0, lon=50))    # origin east
        graph.add_as(_node(3, lat=0, lon=45))    # transit near east
        graph.add_link(1, 3, Relationship.PROVIDER)
        graph.add_link(2, 3, Relationship.PROVIDER)
        origins = [
            Origin(site="W", asn=1, location=Location(0, 0)),
            Origin(site="E", asn=2, location=Location(0, 50)),
        ]
        table = propagate(graph, origins)
        assert table.route(3).site == "E"

    def test_unknown_origin_asn_rejected(self):
        graph = _chain_graph()
        with pytest.raises(KeyError):
            propagate(graph, [Origin(site="X", asn=99)])

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError):
            Origin(site="", asn=1)

    def test_withdrawal_shifts_catchment(self):
        # Two origins; withdrawing one moves its ASes to the other.
        graph = ASGraph()
        for asn in (1, 2, 3, 4, 5):
            graph.add_as(_node(asn))
        graph.add_link(1, 3, Relationship.PROVIDER)
        graph.add_link(2, 4, Relationship.PROVIDER)
        graph.add_link(3, 4, Relationship.PEER)
        graph.add_link(5, 3, Relationship.PROVIDER)
        both = propagate(
            graph, [Origin(site="A", asn=1), Origin(site="B", asn=2)]
        )
        assert both.site_of(5) == "A"
        only_b = propagate(graph, [Origin(site="B", asn=2)])
        assert only_b.site_of(5) == "B"


class TestLocalScope:
    def test_local_route_stays_at_neighbors(self):
        graph = _chain_graph()
        table = propagate(
            graph, [Origin(site="L", asn=1, scope=Scope.LOCAL)]
        )
        assert table.site_of(1) == "L"
        assert table.site_of(2) == "L"  # direct provider
        assert table.site_of(3) is None  # not re-exported
        assert table.site_of(4) is None

    def test_local_customer_class_beats_global_provider_class(self):
        # Stub 4 peers directly with local site 5; it should prefer the
        # local peer route over the provider-learned global route.
        graph = _chain_graph()
        graph.add_as(_node(5))
        graph.add_link(5, 4, Relationship.PEER)
        table = propagate(
            graph,
            [
                Origin(site="GLOB", asn=1),
                Origin(site="LOC", asn=5, scope=Scope.LOCAL),
            ],
        )
        assert table.site_of(4) == "LOC"


class TestRoutingTable:
    def test_catchments_partition_reachable_asns(self):
        graph = _chain_graph()
        table = propagate(graph, [Origin(site="X", asn=1)])
        catchments = table.catchments()
        total = set()
        for asns in catchments.values():
            assert not (total & asns)
            total |= asns
        assert total == table.reachable_asns()

    def test_changes_from_detects_gain_and_loss(self):
        graph = _chain_graph()
        full = propagate(graph, [Origin(site="X", asn=1)])
        empty = RoutingTable({})
        assert full.changes_from(empty) == full.reachable_asns()
        assert empty.changes_from(full) == full.reachable_asns()
        assert full.changes_from(full) == set()

    def test_changes_from_covers_every_transition_kind(self):
        # Hand-built tables exercising each delta the lazy union walk
        # must catch: loss of reachability (ASN only in previous),
        # gain (only in current), site change, path change, and an
        # identical route that must NOT count.
        def route(site, path, cls=RouteClass.CUSTOMER):
            return Route(
                site=site,
                origin_asn=path[0],
                path=tuple(path),
                route_class=cls,
                tiebreak=0.0,
            )

        previous = RoutingTable({
            1: route("X", (1,)),            # lost below
            2: route("X", (1, 2)),          # site change below
            3: route("X", (1, 2, 3)),       # path change below
            4: route("X", (1, 4)),          # unchanged
        })
        current = RoutingTable({
            2: route("Y", (6, 2)),
            3: route("X", (1, 4, 3)),
            4: route("X", (1, 4)),
            5: route("Y", (6, 5)),          # gained
        })
        assert current.changes_from(previous) == {1, 2, 3, 5}
        assert previous.changes_from(current) == {1, 2, 3, 5}

    def test_sites_of_matches_site_of(self):
        graph = _chain_graph()
        table = propagate(graph, [Origin(site="X", asn=1)])
        site_index = {"X": 3}
        got = table.sites_of([1, 2, 3, 4, 99], site_index)
        assert got.tolist() == [3, 3, 3, 3, -1]

    def test_version_tokens_are_unique_and_monotonic(self):
        graph = _chain_graph()
        a = propagate(graph, [Origin(site="X", asn=1)])
        b = propagate(graph, [Origin(site="X", asn=1)])
        c = RoutingTable({})
        versions = [a.version, b.version, c.version]
        assert len(set(versions)) == 3
        assert versions == sorted(versions)


@pytest.mark.parametrize("impl", IMPLEMENTATIONS, ids=IMPL_IDS)
class TestChangesFromEdgeCases:
    """changes_from must agree on every transition kind, per backend.

    The kernel compares array-backed tables without materializing
    routes while the reference walks dicts; both must report the same
    deltas for reachability gained, reachability lost, and identical
    states.
    """

    def _tables(self, impl):
        graph = _chain_graph()
        graph.add_as(_node(5))
        graph.add_link(5, 3, Relationship.PROVIDER)
        full = impl(
            graph, [Origin(site="A", asn=1), Origin(site="B", asn=5)]
        )
        partial = impl(graph, [Origin(site="A", asn=1)])
        return full, partial

    def test_gain_of_reachability(self, impl):
        full, partial = self._tables(impl)
        empty = RoutingTable({})
        assert full.changes_from(empty) == full.reachable_asns()

    def test_loss_of_reachability(self, impl):
        full, partial = self._tables(impl)
        empty = RoutingTable({})
        assert empty.changes_from(full) == full.reachable_asns()

    def test_site_and_path_shift_between_states(self, impl):
        full, partial = self._tables(impl)
        delta = partial.changes_from(full)
        # Withdrawing B moves B's catchment; both directions agree.
        assert delta == full.changes_from(partial)
        assert 5 in delta  # B's origin AS changed its best route
        assert delta <= full.reachable_asns() | partial.reachable_asns()

    def test_identical_states_report_empty(self, impl):
        graph = _chain_graph()
        origins = [Origin(site="A", asn=1)]
        a = impl(graph, origins)
        b = impl(graph, origins)
        assert a.changes_from(b) == set()
        assert b.changes_from(a) == set()
        assert a.changes_from(a) == set()

    def test_empty_vs_empty(self, impl):
        empty_a = RoutingTable({})
        empty_b = RoutingTable({})
        assert empty_a.changes_from(empty_b) == set()

    def test_across_graph_growth(self, impl):
        # Tables compiled before and after the (append-only) graph
        # grew must diff like the dict walk: new reached ASes count as
        # changed, shared rows compare by route.
        graph = _chain_graph()
        origins = [Origin(site="A", asn=1)]
        before = impl(graph, origins)
        graph.add_as(_node(5))
        graph.add_link(5, 3, Relationship.PROVIDER)
        after = impl(graph, origins)
        assert after.changes_from(before) == {5}
        assert before.changes_from(after) == {5}
        # And against an unrelated state on the grown graph.
        moved = impl(graph, [Origin(site="B", asn=4)])
        dict_diff = {
            asn
            for asn in moved._routes.keys() | before._routes.keys()
            if moved._routes.get(asn) != before._routes.get(asn)
        }
        assert moved.changes_from(before) == dict_diff


def _valley_free(graph, path):
    """Check a path is valley-free reading origin -> receiver."""
    # Classify each hop from the exporter's perspective: who is the
    # *receiver* for the exporter?  uphill = exporting to provider.
    kinds = []
    for exporter, receiver in zip(path, path[1:]):
        rel = graph.neighbors(exporter)[receiver]
        kinds.append(rel)
    # Valid: PROVIDER* (uphill), then at most one PEER, then CUSTOMER*.
    phase = 0  # 0 uphill, 1 after-peer, 2 downhill
    for rel in kinds:
        if rel is Relationship.PROVIDER:
            if phase != 0:
                return False
        elif rel is Relationship.PEER:
            if phase != 0:
                return False
            phase = 1
        else:  # CUSTOMER: downhill
            phase = 2
    return True


@st.composite
def random_graph_and_origins(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    graph = ASGraph()
    for asn in range(1, n + 1):
        graph.add_as(
            _node(
                asn,
                lat=draw(st.floats(min_value=-60, max_value=60)),
                lon=draw(st.floats(min_value=-170, max_value=170)),
            )
        )
    # Random relationships; orient provider edges from lower to higher
    # ASN to guarantee the customer-provider hierarchy is acyclic.
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            kind = draw(
                st.sampled_from(["none", "none", "cust", "peer"])
            )
            if kind == "cust":
                graph.add_link(a, b, Relationship.PROVIDER)
            elif kind == "peer":
                graph.add_link(a, b, Relationship.PEER)
    n_origins = draw(st.integers(min_value=1, max_value=3))
    origin_asns = draw(
        st.lists(
            st.integers(min_value=1, max_value=n),
            min_size=n_origins,
            max_size=n_origins,
            unique=True,
        )
    )
    origins = [
        Origin(
            site=f"S{asn}",
            asn=asn,
            location=graph.node(asn).location,
        )
        for asn in origin_asns
    ]
    return graph, origins


class TestValleyFreeProperty:
    @settings(max_examples=120, deadline=None)
    @given(data=random_graph_and_origins())
    def test_all_best_paths_valley_free_and_loop_free(self, data):
        graph, origins = data
        table = propagate(graph, origins)
        for asn in graph.asns:
            route = table.route(asn)
            if route is None:
                continue
            assert route.path[-1] == asn
            assert len(set(route.path)) == len(route.path), "loop"
            assert _valley_free(graph, route.path), route.path

    @settings(max_examples=60, deadline=None)
    @given(data=random_graph_and_origins())
    def test_origins_always_reach_themselves(self, data):
        graph, origins = data
        table = propagate(graph, origins)
        for origin in origins:
            assert table.site_of(origin.asn) == origin.site

    @settings(max_examples=60, deadline=None)
    @given(data=random_graph_and_origins())
    def test_deterministic(self, data):
        graph, origins = data
        a = propagate(graph, origins)
        b = propagate(graph, origins)
        assert a.changes_from(b) == set()
