"""Property tests for partial withdrawal (blocked-neighbor export)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    AnycastPrefix,
    Origin,
    Scope,
    TopologyConfig,
    build_topology,
)
from repro.util import airport


def _build(n_stubs=120, seed=9):
    topo = build_topology(
        TopologyConfig(n_stubs=n_stubs), np.random.default_rng(seed)
    )
    sites = {}
    for code in ("AMS", "LHR", "IAD"):
        asn = topo.add_site_host(
            f"P-{code}", airport(code).location, Scope.GLOBAL,
            ixp_peering=True, ixp_radius_km=300.0, ixp_max_peers=10,
        )
        sites[code] = asn
    prefix = AnycastPrefix(
        topo.graph,
        [
            Origin(site=code, asn=asn,
                   location=airport(code).location)
            for code, asn in sites.items()
        ],
    )
    return topo, prefix, sites


@pytest.fixture(scope="module")
def world():
    return _build()


class TestPartialWithdrawal:
    def test_peers_stay_stuck(self, world):
        topo, prefix, sites = world
        peers = set(topo.graph.peers(sites["LHR"]))
        providers = frozenset(topo.graph.providers(sites["LHR"]))
        before = {
            a: prefix.routing().site_of(a) for a in topo.stub_asns
        }
        prefix.set_blocked("LHR", providers, 1.0)
        after = {
            a: prefix.routing().site_of(a) for a in topo.stub_asns
        }
        prefix.set_blocked("LHR", frozenset(), 2.0)
        for asn in topo.stub_asns:
            if asn in peers and before[asn] == "LHR":
                assert after[asn] == "LHR", "IXP peer must stay stuck"
        # Non-peered LHR clients shift away.
        moved = [
            a for a in topo.stub_asns
            if before[a] == "LHR" and a not in peers
        ]
        if moved:
            assert all(after[a] != "LHR" for a in moved)

    def test_restore_is_exact_inverse(self, world):
        topo, prefix, sites = world
        providers = frozenset(topo.graph.providers(sites["LHR"]))
        before = {
            a: prefix.routing().site_of(a) for a in topo.stub_asns
        }
        prefix.set_blocked("LHR", providers, 1.0)
        prefix.set_blocked("LHR", frozenset(), 2.0)
        after = {
            a: prefix.routing().site_of(a) for a in topo.stub_asns
        }
        assert before == after

    def test_everyone_still_served(self, world):
        topo, prefix, sites = world
        providers = frozenset(topo.graph.providers(sites["LHR"]))
        prefix.set_blocked("LHR", providers, 1.0)
        table = prefix.routing()
        unreached = [
            a for a in topo.stub_asns if table.site_of(a) is None
        ]
        prefix.set_blocked("LHR", frozenset(), 2.0)
        assert not unreached

    def test_change_log_records_partial_transitions(self, world):
        topo, prefix, sites = world
        providers = frozenset(topo.graph.providers(sites["AMS"]))
        n_before = len(prefix.change_log())
        changed = prefix.set_blocked("AMS", providers, 5.0)
        prefix.set_blocked("AMS", frozenset(), 6.0)
        if changed:
            assert len(prefix.change_log()) >= n_before + 1

    def test_idempotent_block(self, world):
        topo, prefix, sites = world
        providers = frozenset(topo.graph.providers(sites["IAD"]))
        assert prefix.set_blocked("IAD", providers, 1.0)
        assert not prefix.set_blocked("IAD", providers, 2.0)
        prefix.set_blocked("IAD", frozenset(), 3.0)

    def test_unknown_site_rejected(self, world):
        _, prefix, _ = world
        with pytest.raises(KeyError):
            prefix.set_blocked("ZZZ", frozenset(), 1.0)
        with pytest.raises(KeyError):
            prefix.blocked_neighbors("ZZZ")


class TestSeedRobustness:
    """Guard against seed-fragile headline dynamics."""

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_partial_withdrawal_shape_across_seeds(self, seed):
        topo, prefix, sites = _build(n_stubs=100, seed=seed)
        providers = frozenset(topo.graph.providers(sites["LHR"]))
        before = {
            a: prefix.routing().site_of(a) for a in topo.stub_asns
        }
        prefix.set_blocked("LHR", providers, 1.0)
        after = {
            a: prefix.routing().site_of(a) for a in topo.stub_asns
        }
        lhr_before = sum(1 for s in before.values() if s == "LHR")
        lhr_after = sum(1 for s in after.values() if s == "LHR")
        assert lhr_after <= lhr_before
        assert all(site is not None for site in after.values())
