"""Tests for anycast announcement state and change logging."""

import pytest

from repro.netsim import (
    ASGraph,
    AnycastPrefix,
    AsNode,
    Origin,
    Relationship,
)
from repro.util import Location


def _node(asn):
    return AsNode(asn=asn, location=Location(0, 0))


@pytest.fixture
def prefix():
    graph = ASGraph()
    for asn in (1, 2, 3, 4, 5):
        graph.add_as(_node(asn))
    graph.add_link(1, 3, Relationship.PROVIDER)
    graph.add_link(2, 4, Relationship.PROVIDER)
    graph.add_link(3, 4, Relationship.PEER)
    graph.add_link(5, 3, Relationship.PROVIDER)
    return AnycastPrefix(
        graph, [Origin(site="A", asn=1), Origin(site="B", asn=2)]
    )


class TestState:
    def test_initially_all_announced(self, prefix):
        assert prefix.announced_sites() == {"A", "B"}
        assert prefix.is_announced("A")

    def test_withdraw_changes_catchment(self, prefix):
        assert prefix.catchment_of(5) == "A"
        assert prefix.withdraw("A", timestamp=100.0)
        assert prefix.catchment_of(5) == "B"
        assert prefix.announced_sites() == {"B"}

    def test_withdraw_idempotent(self, prefix):
        assert prefix.withdraw("A", timestamp=100.0)
        assert not prefix.withdraw("A", timestamp=101.0)
        assert len(prefix.change_log()) == 1

    def test_reannounce_restores(self, prefix):
        before = prefix.catchment_of(5)
        prefix.withdraw("A", timestamp=100.0)
        prefix.announce("A", timestamp=200.0)
        assert prefix.catchment_of(5) == before

    def test_unknown_site_raises(self, prefix):
        with pytest.raises(KeyError):
            prefix.withdraw("Z", timestamp=0.0)
        with pytest.raises(KeyError):
            prefix.is_announced("Z")
        with pytest.raises(KeyError):
            prefix.origin("Z")

    def test_all_withdrawn_leaves_no_routes(self, prefix):
        prefix.withdraw("A", timestamp=1.0)
        prefix.withdraw("B", timestamp=2.0)
        assert prefix.catchment_of(5) is None
        assert len(prefix.routing()) == 0


class TestChangeLog:
    def test_change_log_records_affected_asns(self, prefix):
        prefix.withdraw("A", timestamp=100.0)
        log = prefix.change_log()
        assert len(log) == 1
        assert log[0].timestamp == 100.0
        # ASes 1, 3, 5 were in A's catchment and must change.
        assert {1, 3, 5} <= log[0].changed_asns

    def test_log_ordering(self, prefix):
        prefix.withdraw("A", timestamp=100.0)
        prefix.announce("A", timestamp=200.0)
        times = [rec.timestamp for rec in prefix.change_log()]
        assert times == [100.0, 200.0]


class TestValidation:
    def test_needs_origins(self, prefix):
        with pytest.raises(ValueError):
            AnycastPrefix(prefix.graph, [])

    def test_rejects_duplicate_sites(self, prefix):
        with pytest.raises(ValueError):
            AnycastPrefix(
                prefix.graph,
                [Origin(site="A", asn=1), Origin(site="A", asn=2)],
            )
