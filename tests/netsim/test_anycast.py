"""Tests for anycast announcement state and change logging."""

import pytest

from repro.netsim import (
    ASGraph,
    AnycastPrefix,
    AsNode,
    Origin,
    Relationship,
    propagate,
)
from repro.netsim.anycast import PREFIX_CACHE_STATS
from repro.util import Location


def _node(asn):
    return AsNode(asn=asn, location=Location(0, 0))


@pytest.fixture
def prefix():
    graph = ASGraph()
    for asn in (1, 2, 3, 4, 5):
        graph.add_as(_node(asn))
    graph.add_link(1, 3, Relationship.PROVIDER)
    graph.add_link(2, 4, Relationship.PROVIDER)
    graph.add_link(3, 4, Relationship.PEER)
    graph.add_link(5, 3, Relationship.PROVIDER)
    return AnycastPrefix(
        graph, [Origin(site="A", asn=1), Origin(site="B", asn=2)]
    )


class TestState:
    def test_initially_all_announced(self, prefix):
        assert prefix.announced_sites() == {"A", "B"}
        assert prefix.is_announced("A")

    def test_withdraw_changes_catchment(self, prefix):
        assert prefix.catchment_of(5) == "A"
        assert prefix.withdraw("A", timestamp=100.0)
        assert prefix.catchment_of(5) == "B"
        assert prefix.announced_sites() == {"B"}

    def test_withdraw_idempotent(self, prefix):
        assert prefix.withdraw("A", timestamp=100.0)
        assert not prefix.withdraw("A", timestamp=101.0)
        assert len(prefix.change_log()) == 1

    def test_reannounce_restores(self, prefix):
        before = prefix.catchment_of(5)
        prefix.withdraw("A", timestamp=100.0)
        prefix.announce("A", timestamp=200.0)
        assert prefix.catchment_of(5) == before

    def test_unknown_site_raises(self, prefix):
        with pytest.raises(KeyError):
            prefix.withdraw("Z", timestamp=0.0)
        with pytest.raises(KeyError):
            prefix.is_announced("Z")
        with pytest.raises(KeyError):
            prefix.origin("Z")

    def test_all_withdrawn_leaves_no_routes(self, prefix):
        prefix.withdraw("A", timestamp=1.0)
        prefix.withdraw("B", timestamp=2.0)
        assert prefix.catchment_of(5) is None
        assert len(prefix.routing()) == 0


class TestChangeLog:
    def test_change_log_records_affected_asns(self, prefix):
        prefix.withdraw("A", timestamp=100.0)
        log = prefix.change_log()
        assert len(log) == 1
        assert log[0].timestamp == 100.0
        # ASes 1, 3, 5 were in A's catchment and must change.
        assert {1, 3, 5} <= log[0].changed_asns

    def test_log_ordering(self, prefix):
        prefix.withdraw("A", timestamp=100.0)
        prefix.announce("A", timestamp=200.0)
        times = [rec.timestamp for rec in prefix.change_log()]
        assert times == [100.0, 200.0]


class TestCacheLru:
    def _make_prefix(self, cache_size):
        graph = ASGraph()
        for asn in (1, 2, 3, 4, 5):
            graph.add_as(_node(asn))
        graph.add_link(1, 3, Relationship.PROVIDER)
        graph.add_link(2, 4, Relationship.PROVIDER)
        graph.add_link(3, 4, Relationship.PEER)
        graph.add_link(5, 3, Relationship.PROVIDER)
        return AnycastPrefix(
            graph,
            [Origin(site="A", asn=1), Origin(site="B", asn=2)],
            cache_size=cache_size,
        )

    def test_cache_stays_bounded(self):
        prefix = self._make_prefix(cache_size=2)
        # Cycle through 4 distinct announcement states.
        prefix.routing()                      # {A, B}
        prefix.withdraw("A", timestamp=1.0)   # {B}
        prefix.withdraw("B", timestamp=2.0)   # {}
        prefix.announce("A", timestamp=3.0)   # {A}
        assert len(prefix._cache) <= 2

    def test_eviction_preserves_routing_outputs(self):
        # A tiny cache forces evictions while a large one never
        # evicts; the observable outputs (catchments, change log) must
        # be identical -- only version tokens may differ.
        def drive(prefix):
            seen = []
            schedule = [
                ("A", False), ("B", False), ("A", True),
                ("B", True), ("A", False), ("A", True),
            ]
            for t, (site, up) in enumerate(schedule):
                prefix.set_announced(site, up, timestamp=float(t))
                seen.append(prefix.routing().catchments())
            changes = [rec.changed_asns for rec in prefix.change_log()]
            return seen, changes

        small = drive(self._make_prefix(cache_size=1))
        large = drive(self._make_prefix(cache_size=64))
        assert small == large

    def test_recomputed_state_gets_fresh_version(self):
        prefix = self._make_prefix(cache_size=1)
        v_full = prefix.routing().version
        prefix.withdraw("A", timestamp=1.0)   # evicts {A, B}
        prefix.routing()
        prefix.announce("A", timestamp=2.0)   # recompute {A, B}
        assert prefix.routing().version != v_full

    def test_recency_keeps_hot_state(self):
        prefix = self._make_prefix(cache_size=2)
        prefix.routing()                      # {A, B} cached
        prefix.withdraw("A", timestamp=1.0)   # {B} cached
        prefix.announce("A", timestamp=2.0)   # {A, B} hit, refreshed
        v_full = prefix.routing().version
        prefix.withdraw("B", timestamp=3.0)   # {A} evicts {B}, not {A, B}
        prefix.announce("B", timestamp=4.0)
        assert prefix.routing().version == v_full

    def test_rejects_nonpositive_cache_size(self, prefix):
        with pytest.raises(ValueError):
            AnycastPrefix(
                prefix.graph, [Origin(site="A", asn=1)], cache_size=0
            )


class TestValidation:
    def test_needs_origins(self, prefix):
        with pytest.raises(ValueError):
            AnycastPrefix(prefix.graph, [])

    def test_rejects_duplicate_sites(self, prefix):
        with pytest.raises(ValueError):
            AnycastPrefix(
                prefix.graph,
                [Origin(site="A", asn=1), Origin(site="A", asn=2)],
            )


def _make_prefix(cache_size=64):
    graph = ASGraph()
    for asn in (1, 2, 3, 4, 5):
        graph.add_as(_node(asn))
    graph.add_link(1, 3, Relationship.PROVIDER)
    graph.add_link(2, 4, Relationship.PROVIDER)
    graph.add_link(3, 4, Relationship.PEER)
    graph.add_link(5, 3, Relationship.PROVIDER)
    return AnycastPrefix(
        graph,
        [Origin(site="A", asn=1), Origin(site="B", asn=2)],
        cache_size=cache_size,
    )


def _assert_same_routes(actual, expected):
    assert list(actual._routes) == list(expected._routes)
    assert actual._routes == expected._routes
    assert actual.catchments() == expected.catchments()


class TestDeltaWiring:
    """routing() derives fresh states from cached tables via deltas."""

    @pytest.fixture(autouse=True)
    def _force_delta_eligible(self, monkeypatch):
        # The toy graphs here sit far below the size cutoff where the
        # delta path pays off; drop it so the wiring stays exercised.
        from repro.netsim import anycast as anycast_module

        monkeypatch.setattr(anycast_module, "DELTA_MIN_NODES", 0)

    def test_state_changes_are_delta_derived(self, prefix):
        before = PREFIX_CACHE_STATS["delta_derived"]
        prefix.routing()                                   # cold: full
        prefix.withdraw("A", timestamp=1.0)                # delta base {A,B}
        prefix.set_blocked("B", frozenset({4}), timestamp=2.0)
        assert PREFIX_CACHE_STATS["delta_derived"] >= before + 2

    def test_delta_tables_match_full_propagation(self, prefix):
        prefix.withdraw("A", timestamp=1.0)
        table = prefix.routing()
        full = propagate(prefix.graph, [prefix.origin("B")])
        _assert_same_routes(table, full)

    def test_escape_hatch_forces_full(self, prefix, monkeypatch):
        monkeypatch.setenv("REPRO_BGP_DELTA", "0")
        before = PREFIX_CACHE_STATS["delta_derived"]
        prefix.withdraw("A", timestamp=1.0)
        prefix.set_blocked("B", frozenset({4}), timestamp=2.0)
        assert PREFIX_CACHE_STATS["delta_derived"] == before
        full = propagate(
            prefix.graph,
            [prefix.origin("B").with_blocked(frozenset({4}))],
        )
        _assert_same_routes(prefix.routing(), full)

    def test_dict_backed_tables_never_seed_deltas(self, monkeypatch):
        # bench_routing's reference A/B swaps propagate for the scalar
        # implementation; its dict-backed tables land in the cache and
        # must be passed over when hunting for a delta base.
        from repro.netsim import anycast as anycast_module
        from repro.netsim import bgp_reference

        prefix = _make_prefix()
        with monkeypatch.context() as patched:
            patched.setattr(
                anycast_module, "propagate", bgp_reference.propagate
            )
            prefix.routing()                   # dict-backed {A, B} cached
        prefix.withdraw("A", timestamp=1.0)    # must not replay from it
        full = propagate(prefix.graph, [prefix.origin("B")])
        _assert_same_routes(prefix.routing(), full)


class TestDeltaSizeCutoff:
    def test_small_graphs_skip_the_delta_path(self, prefix):
        # Under the default DELTA_MIN_NODES cutoff a 5-node graph
        # always propagates in full; outputs stay identical.
        before = PREFIX_CACHE_STATS["delta_derived"]
        prefix.routing()
        prefix.withdraw("A", timestamp=1.0)
        table = prefix.routing()
        assert PREFIX_CACHE_STATS["delta_derived"] == before
        _assert_same_routes(
            table, propagate(prefix.graph, [prefix.origin("B")])
        )


class TestSharedMemo:
    def test_memo_serves_states_the_lru_evicted(self):
        prefix = _make_prefix(cache_size=1)
        memo = {}
        prefix.attach_shared_memo(memo, "X")
        before = dict(PREFIX_CACHE_STATS)
        schedule = [
            ("A", False), ("A", True), ("A", False), ("A", True),
        ]
        for t, (site, up) in enumerate(schedule):
            prefix.set_announced(site, up, timestamp=float(t))
        after = dict(PREFIX_CACHE_STATS)
        assert after["memo_hits"] > before["memo_hits"]
        assert len(memo) <= 2
        # Memo reuse is output-invariant: same catchments as no memo.
        bare = _make_prefix(cache_size=1)
        for t, (site, up) in enumerate(schedule):
            bare.set_announced(site, up, timestamp=float(t))
        _assert_same_routes(prefix.routing(), bare.routing())

    def test_memo_stays_bounded(self):
        prefix = _make_prefix(cache_size=1)
        memo = {}
        prefix.attach_shared_memo(memo, "X", memo_size=2)
        prefix.routing()                      # {A, B}
        prefix.withdraw("A", timestamp=1.0)   # {B}
        prefix.withdraw("B", timestamp=2.0)   # {}
        prefix.announce("A", timestamp=3.0)   # {A}
        assert len(memo) <= 2

    def test_memo_survives_reset(self):
        prefix = _make_prefix(cache_size=1)
        memo = {}
        prefix.attach_shared_memo(memo, "X")
        prefix.routing()
        prefix.withdraw("A", timestamp=1.0)
        entries = dict(memo)
        prefix.reset()
        assert memo == entries
