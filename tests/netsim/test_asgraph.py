"""Tests for the AS graph structure."""

import pytest

from repro.netsim import ASGraph, AsNode, AsRole, Relationship
from repro.util import Location


def _node(asn, lat=0.0, lon=0.0, role=AsRole.STUB):
    return AsNode(asn=asn, location=Location(lat, lon), role=role)


@pytest.fixture
def triangle():
    graph = ASGraph()
    for asn in (1, 2, 3):
        graph.add_as(_node(asn))
    graph.add_link(1, 2, Relationship.PROVIDER)  # 2 provides to 1
    graph.add_link(2, 3, Relationship.PEER)
    return graph


class TestRelationship:
    def test_inverse_pairs(self):
        assert Relationship.CUSTOMER.inverse is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse is Relationship.CUSTOMER
        assert Relationship.PEER.inverse is Relationship.PEER


class TestGraphConstruction:
    def test_add_duplicate_as_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_as(_node(1))

    def test_self_link_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link(1, 1, Relationship.PEER)

    def test_link_to_missing_as_rejected(self, triangle):
        with pytest.raises(KeyError):
            triangle.add_link(1, 99, Relationship.PEER)

    def test_conflicting_relationship_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link(1, 2, Relationship.PEER)

    def test_idempotent_same_relationship(self, triangle):
        triangle.add_link(1, 2, Relationship.PROVIDER)
        assert triangle.edge_count() == 2

    def test_negative_asn_rejected(self):
        with pytest.raises(ValueError):
            _node(0)


class TestQueries:
    def test_link_is_symmetric_with_inverse(self, triangle):
        assert triangle.neighbors(1)[2] is Relationship.PROVIDER
        assert triangle.neighbors(2)[1] is Relationship.CUSTOMER

    def test_role_queries(self, triangle):
        assert triangle.providers(1) == [2]
        assert triangle.customers(2) == [1]
        assert triangle.peers(2) == [3]
        assert triangle.peers(3) == [2]

    def test_contains_and_len(self, triangle):
        assert 1 in triangle
        assert 99 not in triangle
        assert len(triangle) == 3

    def test_missing_as_queries_raise(self, triangle):
        with pytest.raises(KeyError):
            triangle.neighbors(99)
        with pytest.raises(KeyError):
            triangle.node(99)
        with pytest.raises(KeyError):
            triangle.providers(99)

    def test_edge_count(self, triangle):
        assert triangle.edge_count() == 2


class TestValidate:
    def test_valid_graph_passes(self, triangle):
        triangle.validate()

    def test_isolated_as_fails(self, triangle):
        triangle.add_as(_node(4))
        with pytest.raises(ValueError):
            triangle.validate()
