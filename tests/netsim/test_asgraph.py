"""Tests for the AS graph structure."""

import pytest

from repro.netsim import ASGraph, AsNode, AsRole, Relationship
from repro.util import Location


def _node(asn, lat=0.0, lon=0.0, role=AsRole.STUB):
    return AsNode(asn=asn, location=Location(lat, lon), role=role)


@pytest.fixture
def triangle():
    graph = ASGraph()
    for asn in (1, 2, 3):
        graph.add_as(_node(asn))
    graph.add_link(1, 2, Relationship.PROVIDER)  # 2 provides to 1
    graph.add_link(2, 3, Relationship.PEER)
    return graph


class TestRelationship:
    def test_inverse_pairs(self):
        assert Relationship.CUSTOMER.inverse is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse is Relationship.CUSTOMER
        assert Relationship.PEER.inverse is Relationship.PEER


class TestGraphConstruction:
    def test_add_duplicate_as_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_as(_node(1))

    def test_self_link_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link(1, 1, Relationship.PEER)

    def test_link_to_missing_as_rejected(self, triangle):
        with pytest.raises(KeyError):
            triangle.add_link(1, 99, Relationship.PEER)

    def test_conflicting_relationship_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link(1, 2, Relationship.PEER)

    def test_idempotent_same_relationship(self, triangle):
        triangle.add_link(1, 2, Relationship.PROVIDER)
        assert triangle.edge_count() == 2

    def test_negative_asn_rejected(self):
        with pytest.raises(ValueError):
            _node(0)


class TestQueries:
    def test_link_is_symmetric_with_inverse(self, triangle):
        assert triangle.neighbors(1)[2] is Relationship.PROVIDER
        assert triangle.neighbors(2)[1] is Relationship.CUSTOMER

    def test_role_queries(self, triangle):
        assert triangle.providers(1) == [2]
        assert triangle.customers(2) == [1]
        assert triangle.peers(2) == [3]
        assert triangle.peers(3) == [2]

    def test_contains_and_len(self, triangle):
        assert 1 in triangle
        assert 99 not in triangle
        assert len(triangle) == 3

    def test_missing_as_queries_raise(self, triangle):
        with pytest.raises(KeyError):
            triangle.neighbors(99)
        with pytest.raises(KeyError):
            triangle.node(99)
        with pytest.raises(KeyError):
            triangle.providers(99)

    def test_edge_count(self, triangle):
        assert triangle.edge_count() == 2


class TestCompiledGraph:
    def test_rows_follow_insertion_order(self, triangle):
        compiled = triangle.compiled()
        assert compiled.asn_of.tolist() == [1, 2, 3]
        assert compiled.row_of == {1: 0, 2: 1, 3: 2}
        assert compiled.n_nodes == 3

    def test_csr_matches_adjacency_order(self, triangle):
        compiled = triangle.compiled()

        def neighbors(indptr, indices, row):
            rows = indices[indptr[row]:indptr[row + 1]]
            return [int(compiled.asn_of[r]) for r in rows]

        for asn in triangle.asns:
            row = compiled.row_of[asn]
            assert neighbors(
                compiled.provider_indptr, compiled.provider_indices, row
            ) == triangle.providers(asn)
            assert neighbors(
                compiled.peer_indptr, compiled.peer_indices, row
            ) == triangle.peers(asn)
            assert neighbors(
                compiled.customer_indptr, compiled.customer_indices, row
            ) == triangle.customers(asn)

    def test_cached_per_version_and_invalidated(self, triangle):
        first = triangle.compiled()
        assert triangle.compiled() is first
        triangle.add_as(_node(4))
        second = triangle.compiled()
        assert second is not first
        assert second.version == triangle.version
        triangle.add_link(4, 2, Relationship.PROVIDER)
        third = triangle.compiled()
        assert third is not second

    def test_arrays_are_read_only(self, triangle):
        compiled = triangle.compiled()
        with pytest.raises(ValueError):
            compiled.asn_of[0] = 99
        with pytest.raises(ValueError):
            compiled.provider_indices[:] = 0

    def test_rows_of_vectorized_lookup(self, triangle):
        compiled = triangle.compiled()
        assert compiled.rows_of([3, 1, 99, 2]).tolist() == [2, 0, -1, 1]

    def test_distance_cache_keyed_on_node_count(self, triangle):
        row = triangle.distance_row(1, Location(0, 0), 1.0)
        assert triangle.distance_row(1, Location(0, 0), 1.0) is row
        # Distances depend only on node locations, which are immutable
        # and append-only -- a link-only edit keeps the memo warm.
        triangle.add_link(1, 3, Relationship.PROVIDER)
        assert triangle.distance_row(1, Location(0, 0), 1.0) is row
        # Growing the node set invalidates the stale-length row.
        triangle.add_as(_node(4, lat=10.0))
        fresh = triangle.distance_row(1, Location(0, 0), 1.0)
        assert fresh is not row
        assert fresh.shape == (4,)


class TestValidate:
    def test_valid_graph_passes(self, triangle):
        triangle.validate()

    def test_isolated_as_fails(self, triangle):
        triangle.add_as(_node(4))
        with pytest.raises(ValueError):
            triangle.validate()
