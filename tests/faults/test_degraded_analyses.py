"""End-to-end: every analysis tolerates a faulted, gappy scenario.

Acceptance scenario for the fault layer: VP dropout, a missing RSSAC
event-day report, and a mid-window site hardware failure -- the whole
analysis pipeline must run without raising and surface the damage as
quality flags instead.
"""

import numpy as np
import pytest

from repro import ScenarioConfig, simulate
from repro.core import (
    clean_dataset,
    collateral_sites,
    correlation_table,
    count_flips,
    event_size_table,
    flips_figure,
    observed_sites_table,
    reachability_figure,
    route_change_series,
    site_minmax_table,
    sites_vs_resilience,
)
from repro.faults import FaultPlan, RssacOutage, SiteFailure, VpDropout
from repro.rootdns import ATTACKED_LETTERS, LETTERS_SPEC
from repro.util.timegrid import EVENT_WINDOW_START as W

HOUR = 3600


@pytest.fixture(scope="module")
def degraded():
    plan = FaultPlan(
        specs=(
            VpDropout(start=W + 14 * HOUR, duration_s=2 * HOUR, fraction=0.4),
            RssacOutage(letter="K", start=W, duration_s=86_400),
            SiteFailure(
                letter="K", site="AMS", start=W + 12 * HOUR,
                duration_s=2 * HOUR, severity=1.0,
            ),
        )
    )
    return simulate(
        ScenarioConfig(
            seed=23, n_stubs=100, n_vps=60,
            letters=("A", "D", "K", "L"), faults=plan,
        )
    )


class TestPipelineSurvives:
    def test_scenario_quality_names_the_damage(self, degraded):
        q = degraded.quality
        assert q.degraded
        assert {"atlas", "rssac", "truth"} <= q.metrics()
        assert q.letters() == frozenset({"K"})
        # The atlas dropout flag carries its bin span.
        (atlas_flag,) = q.for_metric("atlas")
        assert atlas_flag.bins == (84, 95)

    def test_cleaning_and_reachability(self, degraded):
        cleaned, report = clean_dataset(degraded.atlas)
        assert report.n_kept > 0
        fig = reachability_figure(cleaned)
        assert set(fig.names) == {"A", "D", "K", "L"}
        for series in fig.series:
            assert np.isfinite(series.values).all()

    def test_catchment_tables(self, degraded):
        table = observed_sites_table(degraded.atlas)
        assert len(table.rows) == 4
        assert site_minmax_table(degraded.atlas, "K").rows

    def test_flips(self, degraded):
        fig = flips_figure(degraded.atlas)
        assert len(fig.series) == 4
        assert count_flips(degraded.atlas, "K").values.sum() >= 0

    def test_event_size_excludes_missing_letter(self, degraded):
        table = event_size_table(
            degraded.rssac, ATTACKED_LETTERS, "2015-11-30"
        )
        letters_in_table = {row[0].rstrip("*") for row in table.rows}
        assert "K" not in letters_in_table
        assert "A" in letters_in_table
        assert table.quality
        (flag,) = [f for f in table.quality if f.letter == "K"]
        assert flag.metric == "event_size"
        assert "! " in table.render()  # the flag is visible in the text

    def test_collateral(self, degraded):
        cleaned, _ = clean_dataset(degraded.atlas)
        sites = collateral_sites(cleaned, "D")
        assert isinstance(sites, list)

    def test_correlation(self, degraded):
        cleaned, _ = clean_dataset(degraded.atlas)
        site_counts = {L: s.n_sites for L, s in LETTERS_SPEC.items()}
        fit = sites_vs_resilience(cleaned, site_counts)
        # A is excluded by default, leaving exactly three letters --
        # still enough for a fit.
        assert fit.letters == ("D", "K", "L")
        assert np.isfinite(fit.r_squared)
        assert correlation_table(fit).rows[-1][0] == "R^2"

    def test_route_changes(self, degraded):
        fig = route_change_series(degraded.route_changes, degraded.grid)
        assert len(fig.series) == 4
