"""Tests for fault specs, plans, and quality annotations."""

import pytest

from repro.faults import (
    BgpSessionReset,
    DataQuality,
    FaultPlan,
    PeerChurn,
    QualityFlag,
    RssacOutage,
    SiteFailure,
    VpDropout,
)


class TestSpecValidation:
    def test_intervals(self):
        spec = VpDropout(start=1000, duration_s=600)
        assert spec.interval.start == 1000
        assert spec.interval.end == 1600

    @pytest.mark.parametrize("duration", [0, -600])
    def test_nonpositive_duration_rejected(self, duration):
        with pytest.raises(ValueError, match="duration"):
            VpDropout(start=0, duration_s=duration)
        with pytest.raises(ValueError, match="duration"):
            SiteFailure(letter="K", site="AMS", start=0, duration_s=duration)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_bad_fractions_rejected(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            VpDropout(start=0, duration_s=600, fraction=fraction)
        with pytest.raises(ValueError, match="fraction"):
            PeerChurn(start=0, duration_s=600, fraction=fraction)

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            SiteFailure(
                letter="K", site="AMS", start=0, duration_s=600, severity=0.0
            )

    def test_empty_scope_rejected(self):
        with pytest.raises(ValueError):
            SiteFailure(letter="", site="AMS", start=0, duration_s=600)
        with pytest.raises(ValueError):
            BgpSessionReset(letter="K", site="", start=0)
        with pytest.raises(ValueError):
            RssacOutage(letter="", start=0)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0

    def test_nonempty_plan_is_truthy(self):
        plan = FaultPlan(specs=(VpDropout(start=0, duration_s=600),))
        assert plan
        assert len(plan) == 1

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError, match="not a fault spec"):
            FaultPlan(specs=("oops",))

    def test_of_type_preserves_order(self):
        a = VpDropout(start=0, duration_s=600)
        b = SiteFailure(letter="K", site="AMS", start=0, duration_s=600)
        c = VpDropout(start=1200, duration_s=600)
        plan = FaultPlan(specs=(a, b, c))
        assert plan.of_type(VpDropout) == (a, c)
        assert plan.of_type(VpDropout, SiteFailure) == (a, b, c)

    def test_letters(self):
        plan = FaultPlan(
            specs=(
                SiteFailure(letter="K", site="AMS", start=0, duration_s=600),
                RssacOutage(letter="A", start=0),
                VpDropout(start=0, duration_s=600),
            )
        )
        assert plan.letters() == frozenset({"K", "A"})


class TestQualityFlag:
    def test_needs_metric_and_detail(self):
        with pytest.raises(ValueError):
            QualityFlag(metric="", detail="x")
        with pytest.raises(ValueError):
            QualityFlag(metric="atlas", detail="")

    def test_bad_bin_span_rejected(self):
        with pytest.raises(ValueError):
            QualityFlag(metric="atlas", detail="x", bins=(5, 2))
        with pytest.raises(ValueError):
            QualityFlag(metric="atlas", detail="x", bins=(-1, 2))

    def test_str_rendering(self):
        flag = QualityFlag(
            metric="rssac", detail="report missing", letter="K", bins=(3, 9)
        )
        assert str(flag) == "[rssac] K [bins 3-9]: report missing"


class TestDataQuality:
    def _report(self):
        return DataQuality(
            flags=(
                QualityFlag(metric="atlas", detail="dropout", bins=(1, 4)),
                QualityFlag(metric="rssac", detail="missing", letter="K"),
                QualityFlag(metric="rssac", detail="missing", letter="A"),
            )
        )

    def test_empty_means_full_fidelity(self):
        assert not DataQuality()
        assert not DataQuality().degraded
        assert "full fidelity" in DataQuality().describe()

    def test_selectors(self):
        q = self._report()
        assert q.degraded
        assert len(q.for_metric("rssac")) == 2
        assert len(q.for_letter("K")) == 1
        assert q.letters() == frozenset({"K", "A"})
        assert q.metrics() == frozenset({"atlas", "rssac"})

    def test_merged(self):
        q = DataQuality(
            flags=(QualityFlag(metric="truth", detail="site failed"),)
        )
        merged = q.merged(self._report())
        assert len(merged) == 4
        assert merged.metrics() == frozenset({"truth", "atlas", "rssac"})

    def test_merged_keeps_duplicates(self):
        q = self._report()
        assert len(q.merged(q)) == 2 * len(q)

    def test_union_deduplicates(self):
        q = self._report()
        assert q.union(q) == q
        assert q.union(q, q, DataQuality()) == q

    def test_union_preserves_first_occurrence_order(self):
        a = DataQuality(
            flags=(
                QualityFlag(metric="truth", detail="site failed"),
                QualityFlag(metric="atlas", detail="dropout"),
            )
        )
        b = DataQuality(
            flags=(
                QualityFlag(metric="atlas", detail="dropout"),
                QualityFlag(metric="rssac", detail="missing", letter="K"),
            )
        )
        combined = a.union(b)
        assert combined.flags == (
            QualityFlag(metric="truth", detail="site failed"),
            QualityFlag(metric="atlas", detail="dropout"),
            QualityFlag(metric="rssac", detail="missing", letter="K"),
        )
        # Seed-dependent flags (differing spans) survive verbatim.
        c = DataQuality(
            flags=(QualityFlag(metric="atlas", detail="dropout", bins=(0, 3)),)
        )
        assert len(a.union(c)) == 3
