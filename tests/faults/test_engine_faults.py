"""Engine-level fault injection: effects, determinism, degradation.

One small faulted scenario (4 letters, 48 h window) exercises every
fault type at once; the tests then check each substrate's perturbation,
the quality report, bit-for-bit determinism, and that the full
analysis pipeline degrades gracefully instead of raising.
"""

import numpy as np
import pytest

from repro import ScenarioConfig, simulate
from repro.datasets import RESP_NOT_PROBED
from repro.faults import (
    BgpSessionReset,
    ControllerOutage,
    FaultPlan,
    PeerChurn,
    RssacOutage,
    SiteFailure,
    VpDropout,
)
from repro.util.timegrid import EVENT_WINDOW_START as W

HOUR = 3600

#: Mid-window quiet-time faults (both events are over by 10:00 on the
#: first day and the second event starts at 05:10 on the second).
PLAN = FaultPlan(
    specs=(
        # K-AMS hardware dies for 2 h (bins 72-83).
        SiteFailure(
            letter="K", site="AMS", start=W + 12 * HOUR,
            duration_s=2 * HOUR, severity=1.0,
        ),
        # K-LHR session reset + damping: down 30 min (bins 90-92).
        BgpSessionReset(
            letter="K", site="LHR", start=W + 15 * HOUR, duration_s=1800,
        ),
        # Half the VP fleet silent for 1 h (bins 108-113).
        VpDropout(start=W + 18 * HOUR, duration_s=HOUR, fraction=0.5),
        # Whole-fleet controller outage for 30 min (bins 126-128).
        ControllerOutage(start=W + 21 * HOUR, duration_s=1800),
        # Half the BGPmon peers down around the first event.
        PeerChurn(start=W + 6 * HOUR, duration_s=2 * HOUR, fraction=0.5),
        # K's RSSAC report for the first event day never published.
        RssacOutage(letter="K", start=W, duration_s=86_400),
    )
)


def _config(faults=FaultPlan(), seed=11):
    return ScenarioConfig(
        seed=seed, n_stubs=100, n_vps=60,
        letters=("A", "D", "K", "L"), faults=faults,
    )


@pytest.fixture(scope="module")
def faulted():
    return simulate(_config(faults=PLAN))


@pytest.fixture(scope="module")
def baseline():
    return simulate(_config())


class TestQualityReport:
    def test_all_fault_families_flagged(self, faulted):
        assert faulted.quality.degraded
        assert {"truth", "routing", "atlas", "bgpmon", "rssac"} <= (
            faulted.quality.metrics()
        )

    def test_degraded_letters_identified(self, faulted):
        assert "K" in faulted.quality.letters()

    def test_flags_carry_bin_spans(self, faulted):
        (flag,) = faulted.quality.for_metric("truth")
        assert flag.bins == (72, 83)
        (flag,) = faulted.quality.for_metric("routing")
        assert flag.bins == (90, 92)

    def test_baseline_run_is_clean(self, baseline):
        assert not baseline.quality
        assert not baseline.quality.degraded


class TestSiteFailure:
    def test_failed_site_black_holes(self, faulted):
        t = faulted.truth["K"]
        ams = t.site_codes.index("AMS")
        covered = t.loss[72:84, ams]
        offered = t.offered_qps[72:84, ams]
        assert (offered > 0).all()  # BGP still routes traffic there
        assert (covered > 0.99).all()  # ...and nearly all of it is lost

    def test_loss_recovers_after_failure(self, faulted, baseline):
        t = faulted.truth["K"]
        ams = t.site_codes.index("AMS")
        assert t.loss[84:96, ams].max() < 0.5
        b = baseline.truth["K"]
        assert b.loss[72:84, ams].max() < 0.5

    def test_other_sites_unaffected_in_quiet_bins(self, faulted, baseline):
        t, b = faulted.truth["L"], baseline.truth["L"]
        assert np.allclose(t.loss[72:84], b.loss[72:84])


class TestSessionReset:
    def test_announcement_flaps(self, faulted, baseline):
        t = faulted.truth["K"]
        lhr = t.site_codes.index("LHR")
        assert not t.announced[90:93, lhr].any()
        assert t.announced[93, lhr]
        assert t.announced[89, lhr]
        assert baseline.truth["K"].announced[90:93, lhr].all()

    def test_transitions_visible_to_bgpmon(self, faulted, baseline):
        # The withdraw and re-announce land in the change log and show
        # up as extra observed updates around the reset bins.
        window = slice(89, 95)
        extra = faulted.route_changes["K"][window].sum()
        base = baseline.route_changes["K"][window].sum()
        assert extra > base


class TestAtlasMasking:
    def test_dropout_blanks_cells(self, faulted):
        obs = faulted.atlas.letter("K")
        not_probed = (obs.site_idx[108:114] == RESP_NOT_PROBED).sum(axis=1)
        # At least the dropped half of 60 VPs is silent in every
        # covered bin (plus whatever the probing cadence skips).
        assert (not_probed >= 30).all()

    def test_dropout_is_window_scoped(self, faulted, baseline):
        obs = faulted.atlas.letter("K")
        base = baseline.atlas.letter("K")
        assert (obs.site_idx[100:106] == base.site_idx[100:106]).all()

    def test_controller_outage_blanks_fleet(self, faulted):
        for letter in faulted.letters:
            obs = faulted.atlas.letter(letter)
            assert (obs.site_idx[126:129] == RESP_NOT_PROBED).all()
            assert np.isnan(obs.rtt_ms[126:129]).all()


class TestRssacOutage:
    def test_event_day_report_missing(self, faulted):
        dates = [r.date for r in faulted.rssac["K"]]
        assert "2015-11-30" not in dates
        assert "2015-12-01" in dates

    def test_other_letters_keep_reporting(self, faulted):
        assert "2015-11-30" in [r.date for r in faulted.rssac["A"]]

    def test_missing_day_flagged(self, faulted):
        flags = faulted.quality.for_metric("rssac")
        assert any(
            f.letter == "K" and "2015-11-30" in f.detail for f in flags
        )


class TestPeerChurn:
    def test_counts_never_exceed_full_fleet(self, faulted, baseline):
        # Peer churn can only remove observers.  Outside the churn
        # window counts come from the same seeded stream, but the
        # Poisson draws shift once any count differs, so only the
        # aggregate inequality is meaningful per letter.
        for letter in faulted.letters:
            assert (
                faulted.route_changes[letter].sum()
                <= baseline.route_changes[letter].sum() + 1e-9
            )


class TestScopeValidation:
    def test_unknown_letter_rejected(self):
        plan = FaultPlan(
            specs=(
                SiteFailure(
                    letter="Z", site="AMS", start=W, duration_s=600
                ),
            )
        )
        with pytest.raises(ValueError, match="not simulated"):
            simulate(_config(faults=plan))

    def test_unknown_site_rejected(self):
        plan = FaultPlan(
            specs=(
                BgpSessionReset(letter="K", site="ZZZ", start=W),
            )
        )
        with pytest.raises(ValueError, match="does not operate"):
            simulate(_config(faults=plan))


class TestDeterminism:
    def test_same_seed_same_faults_bit_identical(self, faulted):
        again = simulate(_config(faults=PLAN))
        for letter in faulted.letters:
            a, b = faulted.atlas.letter(letter), again.atlas.letter(letter)
            assert (a.site_idx == b.site_idx).all()
            assert np.array_equal(a.rtt_ms, b.rtt_ms, equal_nan=True)
            assert (
                faulted.route_changes[letter] == again.route_changes[letter]
            ).all()
            assert (
                faulted.truth[letter].loss == again.truth[letter].loss
            ).all()
            assert [r.date for r in faulted.rssac[letter]] == [
                r.date for r in again.rssac[letter]
            ]
        assert faulted.quality == again.quality

    def test_different_seed_different_dropout(self):
        a = simulate(_config(faults=PLAN, seed=11))
        b = simulate(_config(faults=PLAN, seed=12))
        ka = a.atlas.letter("K").site_idx[108:114]
        kb = b.atlas.letter("K").site_idx[108:114]
        assert not (ka == kb).all()
