"""Tests for the observation dataset schema."""

import numpy as np
import pytest

from repro.datasets import (
    AtlasDataset,
    LetterObservations,
    RESP_NOT_PROBED,
    RESP_TIMEOUT,
    VantagePointTable,
)
from repro.util import TimeGrid


def _vps(n=4):
    return VantagePointTable(
        ids=np.arange(n, dtype=np.int64),
        asns=np.full(n, 10_000, dtype=np.int64),
        lats=np.zeros(n),
        lons=np.zeros(n),
        regions=np.array(["EU"] * n, dtype="U2"),
        firmware=np.full(n, 4700, dtype=np.int32),
        hijacked=np.zeros(n, dtype=bool),
    )


def _obs(letter="K", n_bins=3, n_vps=4):
    return LetterObservations(
        letter=letter,
        site_codes=["AMS", "LHR"],
        site_idx=np.zeros((n_bins, n_vps), dtype=np.int16),
        rtt_ms=np.full((n_bins, n_vps), 20.0, dtype=np.float32),
        server=np.ones((n_bins, n_vps), dtype=np.int16),
    )


class TestVantagePointTable:
    def test_len_and_europe_fraction(self):
        vps = _vps()
        assert len(vps) == 4
        assert vps.europe_fraction() == 1.0

    def test_rejects_misaligned_columns(self):
        with pytest.raises(ValueError):
            VantagePointTable(
                ids=np.arange(3, dtype=np.int64),
                asns=np.zeros(2, dtype=np.int64),
                lats=np.zeros(3),
                lons=np.zeros(3),
                regions=np.array(["EU"] * 3, dtype="U2"),
                firmware=np.zeros(3, dtype=np.int32),
                hijacked=np.zeros(3, dtype=bool),
            )

    def test_rejects_duplicate_ids(self):
        vps = _vps()
        with pytest.raises(ValueError):
            VantagePointTable(
                ids=np.zeros(4, dtype=np.int64),
                asns=vps.asns,
                lats=vps.lats,
                lons=vps.lons,
                regions=vps.regions,
                firmware=vps.firmware,
                hijacked=vps.hijacked,
            )


class TestLetterObservations:
    def test_shapes(self):
        obs = _obs()
        assert obs.n_bins == 3
        assert obs.n_vps == 4

    def test_rejects_misaligned_matrices(self):
        with pytest.raises(ValueError):
            LetterObservations(
                letter="K",
                site_codes=["AMS"],
                site_idx=np.zeros((3, 4), dtype=np.int16),
                rtt_ms=np.zeros((3, 5), dtype=np.float32),
                server=np.zeros((3, 4), dtype=np.int16),
            )

    def test_site_code_lookup(self):
        obs = _obs()
        assert obs.site_code(1) == "LHR"
        with pytest.raises(ValueError):
            obs.site_code(RESP_TIMEOUT)

    def test_masks(self):
        obs = _obs()
        obs.site_idx[0, 0] = RESP_TIMEOUT
        obs.site_idx[1, 1] = RESP_NOT_PROBED
        assert not obs.success_mask()[0, 0]
        assert not obs.probed_mask()[1, 1]
        assert obs.probed_mask()[0, 0]

    def test_select_vps(self):
        obs = _obs()
        keep = np.array([True, False, True, False])
        sub = obs.select_vps(keep)
        assert sub.n_vps == 2
        with pytest.raises(ValueError):
            obs.select_vps(np.array([True]))


class TestAtlasDataset:
    def test_validates_shapes(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=3)
        ds = AtlasDataset(grid=grid, vps=_vps(), letters={"K": _obs()})
        assert ds.letter("K").letter == "K"

    def test_rejects_bin_mismatch(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=5)
        with pytest.raises(ValueError):
            AtlasDataset(grid=grid, vps=_vps(), letters={"K": _obs()})

    def test_rejects_vp_mismatch(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=3)
        with pytest.raises(ValueError):
            AtlasDataset(
                grid=grid, vps=_vps(n=5), letters={"K": _obs(n_vps=4)}
            )

    def test_unknown_letter_raises(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=3)
        ds = AtlasDataset(grid=grid, vps=_vps(), letters={"K": _obs()})
        with pytest.raises(KeyError):
            ds.letter("Z")

    def test_select_vps_cascades(self):
        grid = TimeGrid(start=0, bin_seconds=600, n_bins=3)
        ds = AtlasDataset(grid=grid, vps=_vps(), letters={"K": _obs()})
        sub = ds.select_vps(np.array([True, True, False, False]))
        assert len(sub.vps) == 2
        assert sub.letter("K").n_vps == 2
