"""Tests for dataset persistence (npz bundles and NDJSON records)."""

import numpy as np
import pytest

from repro.datasets import (
    CorruptRecordError,
    ProbeRecord,
    load_dataset,
    read_probe_records,
    save_dataset,
    write_probe_records,
)


class TestNpzRoundTrip:
    def test_full_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "atlas.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.grid == dataset.grid
        assert (loaded.vps.ids == dataset.vps.ids).all()
        assert (loaded.vps.firmware == dataset.vps.firmware).all()
        assert sorted(loaded.letters) == sorted(dataset.letters)
        for letter in dataset.letters:
            a, b = dataset.letter(letter), loaded.letter(letter)
            assert a.site_codes == b.site_codes
            assert (a.site_idx == b.site_idx).all()
            assert np.array_equal(a.rtt_ms, b.rtt_ms, equal_nan=True)
            assert (a.server == b.server).all()

    def test_rejects_future_format(self, dataset, tmp_path):
        path = tmp_path / "atlas.npz"
        save_dataset(dataset, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format_version"] = np.array([99])
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_dataset(path)


class TestProbeRecords:
    def _records(self):
        return [
            ProbeRecord(
                vp_id=1, letter="K", timestamp=100.0,
                answer="ns2.fra.k.ripe.net", rtt_ms=25.0, rcode=0,
                firmware=4700,
            ),
            ProbeRecord(
                vp_id=2, letter="K", timestamp=101.0,
                answer=None, rtt_ms=None, rcode=None, firmware=4700,
            ),
            ProbeRecord(
                vp_id=3, letter="K", timestamp=102.0,
                answer=None, rtt_ms=None, rcode=2, firmware=4500,
            ),
        ]

    def test_ndjson_roundtrip(self, tmp_path):
        path = tmp_path / "probes.ndjson"
        count = write_probe_records(self._records(), path)
        assert count == 3
        loaded = list(read_probe_records(path))
        assert loaded == self._records()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "probes.ndjson"
        write_probe_records(self._records()[:1], path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(list(read_probe_records(path))) == 1

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "probes.ndjson"
        path.write_text('{"bad json\n')
        with pytest.raises(ValueError, match=":1:"):
            list(read_probe_records(path))

    def test_corrupt_error_carries_location(self, tmp_path):
        path = tmp_path / "probes.ndjson"
        write_probe_records(self._records()[:1], path)
        with open(path, "a") as handle:
            handle.write("%% truncated garbage\n")
        with pytest.raises(CorruptRecordError) as excinfo:
            list(read_probe_records(path))
        assert excinfo.value.line_no == 2
        assert excinfo.value.path == str(path)

    def test_unknown_field_is_corrupt(self, tmp_path):
        path = tmp_path / "probes.ndjson"
        path.write_text('{"vp_id": 1, "surprise": true}\n')
        with pytest.raises(CorruptRecordError, match=":1:"):
            list(read_probe_records(path))

    def test_non_object_line_is_corrupt(self, tmp_path):
        path = tmp_path / "probes.ndjson"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(CorruptRecordError, match="JSON object"):
            list(read_probe_records(path))

    def test_skip_corrupt_keeps_good_records(self, tmp_path):
        path = tmp_path / "probes.ndjson"
        write_probe_records(self._records()[:1], path)
        with open(path, "a") as handle:
            handle.write("not json at all\n")
        write_probe_records(self._records()[1:], tmp_path / "rest.ndjson")
        with open(tmp_path / "rest.ndjson") as rest:
            with open(path, "a") as handle:
                handle.write(rest.read())
        skipped = []
        loaded = list(
            read_probe_records(path, skip_corrupt=True, skipped=skipped)
        )
        assert loaded == self._records()
        assert skipped == [2]

    def test_reply_requires_rtt(self):
        with pytest.raises(ValueError):
            ProbeRecord(
                vp_id=1, letter="K", timestamp=0.0,
                answer="x", rtt_ms=None, rcode=0, firmware=4700,
            )
