"""Tests for BGPmon-style collectors."""

import numpy as np
import pytest

from repro.bgpmon import BgpCollectors, BgpmonConfig, build_collectors
from repro.netsim import TopologyConfig, build_topology
from repro.util import TimeGrid


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologyConfig(n_stubs=200),
                          np.random.default_rng(2))


class TestBuild:
    def test_peer_count(self, topo):
        collectors = build_collectors(
            topo, BgpmonConfig(n_peers=152), np.random.default_rng(1)
        )
        assert len(collectors) == 152

    def test_peers_are_real_ases(self, topo):
        collectors = build_collectors(
            topo, BgpmonConfig(n_peers=50), np.random.default_rng(1)
        )
        known = set(topo.stub_asns) | set(topo.transit_asns)
        assert set(int(a) for a in collectors.peer_asns) <= known

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BgpmonConfig(n_peers=0)
        with pytest.raises(ValueError):
            BgpmonConfig(na_bias=2.0)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            BgpCollectors(np.array([], dtype=np.int64))


class TestRouteChanges:
    def test_changes_attributed_to_bins(self, topo):
        from repro.netsim import AnycastPrefix, Origin

        grid = TimeGrid(start=0, bin_seconds=600, n_bins=6)
        stubs = topo.stub_asns[:20]
        prefix = AnycastPrefix(
            topo.graph,
            [
                Origin(site="X", asn=topo.transit_asns[0]),
                Origin(site="Y", asn=topo.transit_asns[5]),
            ],
        )
        collectors = BgpCollectors(np.asarray(stubs, dtype=np.int64))
        prefix.withdraw("X", timestamp=650.0)   # bin 1
        prefix.announce("X", timestamp=1850.0)  # bin 3
        counts = collectors.route_changes_per_bin(
            prefix, grid, np.random.default_rng(1)
        )
        assert counts[1] > 0
        assert counts[3] > 0
        assert counts[0] == 0
        assert counts[2] == 0

    def test_out_of_grid_changes_ignored(self, topo):
        from repro.netsim import AnycastPrefix, Origin

        grid = TimeGrid(start=1000, bin_seconds=600, n_bins=2)
        prefix = AnycastPrefix(
            topo.graph, [Origin(site="X", asn=topo.transit_asns[0])]
        )
        prefix.withdraw("X", timestamp=10.0)  # before the grid
        collectors = BgpCollectors(
            np.asarray(topo.stub_asns[:10], dtype=np.int64)
        )
        counts = collectors.route_changes_per_bin(
            prefix, grid, np.random.default_rng(1)
        )
        assert counts.sum() == 0


class TestScenarioIntegration:
    def test_churn_concentrates_in_events(self, scenario):
        from repro.core import event_concentration

        for letter in ("E", "H", "K"):
            counts = scenario.route_changes[letter]
            assert counts.sum() > 0, letter
            assert event_concentration(counts, scenario.grid) > 0.4, letter

    def test_unattacked_letters_quiet(self, scenario):
        for letter in ("D", "L", "M"):
            assert scenario.route_changes[letter].sum() == 0
