"""Golden-equivalence guard for the epoch-vectorized fast path.

``tests/scenario/golden/golden_engine.npz`` was generated from the
pre-fast-path engine (``scripts/make_golden.py``).  This test re-runs
the same seeded scenario and requires *bit-identical* truth series,
Atlas matrices, RSSAC counters, and BGPmon route changes -- proving
that caching, vectorization, and batched probing change no simulated
behaviour.

If this test fails after an engine change, the change altered
simulation semantics.  Either fix the regression or -- only for an
*intentional* semantic change -- regenerate the fixture and say so in
the PR.
"""

import pathlib
import sys

import numpy as np
import pytest

FIXTURE = pathlib.Path(__file__).parent / "golden" / "golden_engine.npz"
SCRIPTS = str(
    pathlib.Path(__file__).resolve().parent.parent.parent / "scripts"
)


@pytest.fixture(scope="module")
def golden():
    return np.load(FIXTURE)


@pytest.fixture(scope="module")
def fresh_arrays():
    sys.path.insert(0, SCRIPTS)
    try:
        from make_golden import golden_config, result_arrays
    finally:
        sys.path.remove(SCRIPTS)
    from repro.scenario.engine import simulate

    return result_arrays(simulate(golden_config()))


class TestGoldenEquivalence:
    def test_same_array_set(self, golden, fresh_arrays):
        assert set(golden.files) == set(fresh_arrays)

    def test_bit_identical_outputs(self, golden, fresh_arrays):
        mismatched = []
        for name in golden.files:
            want = golden[name]
            got = np.asarray(fresh_arrays[name])
            if want.shape != got.shape or want.dtype != got.dtype:
                mismatched.append(f"{name}: shape/dtype")
                continue
            if not np.array_equal(want, got, equal_nan=True):
                bad = ~(
                    (want == got)
                    | (
                        np.isnan(want) & np.isnan(got)
                        if np.issubdtype(want.dtype, np.floating)
                        else np.zeros(want.shape, dtype=bool)
                    )
                )
                mismatched.append(f"{name}: {int(bad.sum())} cells differ")
        assert not mismatched, "\n".join(mismatched)


class TestBatchModeEquivalence:
    """REPRO_ENGINE_BATCH=0 (per-bin reference loop) is the escape
    hatch for the segment-batched engine; both modes must reproduce
    the golden fixture bit for bit."""

    def test_batch_off_matches_golden(self, golden, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_BATCH", "0")
        sys.path.insert(0, SCRIPTS)
        try:
            from make_golden import golden_config, result_arrays
        finally:
            sys.path.remove(SCRIPTS)
        from repro.scenario.engine import simulate

        arrays = result_arrays(simulate(golden_config()))
        assert set(golden.files) == set(arrays)
        for name in golden.files:
            assert np.array_equal(
                golden[name], np.asarray(arrays[name]), equal_nan=True
            ), name


class TestDeltaModeEquivalence:
    """REPRO_BGP_DELTA=0 (full propagation everywhere) is the escape
    hatch for the incremental-routing fast path; both modes must
    produce bit-identical scenario outputs."""

    def test_delta_off_matches_golden(self, golden, monkeypatch):
        monkeypatch.setenv("REPRO_BGP_DELTA", "0")
        sys.path.insert(0, SCRIPTS)
        try:
            from make_golden import golden_config, result_arrays
        finally:
            sys.path.remove(SCRIPTS)
        from repro.scenario.engine import simulate

        arrays = result_arrays(simulate(golden_config()))
        assert set(golden.files) == set(arrays)
        for name in golden.files:
            assert np.array_equal(
                golden[name], np.asarray(arrays[name]), equal_nan=True
            ), name
