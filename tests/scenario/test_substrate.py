"""Substrate reuse must be bit-identical to a fresh build.

The sweep engine's per-worker cache rests entirely on this contract:
``simulate(config, substrate)`` after ``substrate.reset()`` produces
exactly the outputs of ``simulate(config)`` -- including policy churn,
standby activation, BGP change logs, and fault resolution.
"""

import dataclasses

import pytest

from repro.faults import FaultPlan, SiteFailure
from repro.scenario import (
    ScenarioConfig,
    build_substrate,
    diff_arrays,
    result_arrays,
    simulate,
    substrate_signature,
)


@pytest.fixture(scope="module")
def config():
    # H brings a standby site (reset must replay its initial
    # withdrawal); K brings partial withdrawal churn.
    return ScenarioConfig(
        seed=11, n_stubs=60, n_vps=30, letters=("H", "K"),
        include_nl=True,
    )


@pytest.fixture(scope="module")
def fresh(config):
    return result_arrays(simulate(config))


class TestSubstrateReuse:
    def test_first_use_matches_fresh_build(self, config, fresh):
        substrate = build_substrate(config)
        assert not diff_arrays(
            fresh, result_arrays(simulate(config, substrate))
        )

    def test_reuse_after_full_run_matches(self, config, fresh):
        substrate = build_substrate(config)
        simulate(config, substrate)  # dirty every mutable piece
        assert not diff_arrays(
            fresh, result_arrays(simulate(config, substrate))
        )

    def test_reuse_with_faults_matches(self, config):
        plan = FaultPlan(
            specs=(
                SiteFailure(
                    letter="K", site="AMS",
                    start=config.window_start + 12 * 3600,
                    duration_s=2 * 3600, severity=1.0,
                ),
            )
        )
        faulted = dataclasses.replace(config, faults=plan)
        standalone = simulate(faulted)
        substrate = build_substrate(faulted)
        simulate(faulted, substrate)
        again = simulate(faulted, substrate)
        assert not diff_arrays(
            result_arrays(standalone), result_arrays(again)
        )
        assert standalone.quality == again.quality

    def test_run_knobs_share_a_signature(self, config):
        # Fields the substrate does not depend on (events, window,
        # faults, controllers) leave the signature unchanged...
        quiet = dataclasses.replace(
            config, events=(), baseline_days=3
        )
        assert substrate_signature(quiet) == substrate_signature(config)

    def test_substrate_knobs_change_the_signature(self, config):
        for override in ({"seed": 12}, {"n_stubs": 61},
                         {"letters": ("K",)}, {"include_nl": False}):
            other = dataclasses.replace(config, **override)
            assert (
                substrate_signature(other) != substrate_signature(config)
            ), override

    def test_mismatched_substrate_rejected(self, config):
        substrate = build_substrate(config)
        other = dataclasses.replace(config, seed=12)
        with pytest.raises(ValueError, match="different scenario"):
            simulate(other, substrate)

    def test_run_knob_change_reuses_substrate(self, config, fresh):
        # A config differing only in run knobs may reuse the substrate
        # and still matches its own fresh build.
        substrate = build_substrate(config)
        quiet = dataclasses.replace(config, events=())
        via_substrate = result_arrays(simulate(quiet, substrate))
        assert not diff_arrays(
            result_arrays(simulate(quiet)), via_substrate
        )
        # ... and the substrate still reproduces the original config.
        assert not diff_arrays(
            fresh, result_arrays(simulate(config, substrate))
        )
