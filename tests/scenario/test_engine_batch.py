"""Segment-batched engine vs. the per-bin reference path.

``run_batched`` (REPRO_ENGINE_BATCH=1, the default) partitions the
window into contiguous segments and evaluates whole ``(bins, sites)``
matrices at once; REPRO_ENGINE_BATCH=0 keeps the original one-bin-at-
a-time loop.  The two must be *bit-identical* on every simulated
output -- these tests drive randomized event grids, faults, .nl
recording, and defense controllers through both paths and diff every
array.  Any mismatch means the batching changed simulation semantics.
"""

import numpy as np
import pytest

from repro import ScenarioConfig, simulate
from repro.attack import AttackEvent
from repro.defense.controllers import GreedyShedController
from repro.faults import (
    BgpSessionReset,
    FaultPlan,
    PeerChurn,
    SiteFailure,
    VpDropout,
)
from repro.scenario.arrays import diff_arrays, result_arrays
from repro.util import Interval
from repro.util.env import ENGINE_BATCH
from repro.util.timegrid import EVENT_WINDOW_START as W

HOUR = 3600


def _config(**overrides):
    base = dict(
        seed=11,
        n_stubs=80,
        n_vps=50,
        letters=("A", "K"),
        include_nl=False,
        window_seconds=12 * HOUR,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _event(name, start, end, rate, targets):
    return AttackEvent(
        name=name,
        interval=Interval(start, end),
        qname=f"{name}.example.",
        rate_qps=rate,
        targets=targets,
        query_wire_bytes=84,
    )


def _random_events(rng, letters, window_seconds):
    """A small random grid of events: off-bin boundaries, overlapping
    targets, and rates spanning quiet to overload."""
    events = []
    for i in range(int(rng.integers(1, 4))):
        start = W + int(rng.integers(0, window_seconds - HOUR))
        length = int(rng.integers(600, 4 * HOUR))
        rate = float(10.0 ** rng.uniform(5.0, 6.9))
        k = int(rng.integers(1, len(letters) + 1))
        targets = tuple(
            sorted(rng.choice(letters, size=k, replace=False).tolist())
        )
        events.append(_event(f"ev{i}", start, start + length, rate, targets))
    return tuple(events)


def _assert_equivalent(config, monkeypatch):
    monkeypatch.setenv(ENGINE_BATCH, "1")
    batched = simulate(config)
    monkeypatch.setenv(ENGINE_BATCH, "0")
    reference = simulate(config)
    mismatches = diff_arrays(
        result_arrays(batched), result_arrays(reference)
    )
    assert not mismatches, mismatches
    assert batched.quality == reference.quality


class TestBatchedEquivalence:
    def test_quiet_window(self, monkeypatch):
        """No events at all: one maximal segment per epoch."""
        _assert_equivalent(_config(events=()), monkeypatch)

    def test_default_events(self, monkeypatch):
        """The paper's Nov 30 event inside a 12 h window."""
        _assert_equivalent(_config(seed=3), monkeypatch)

    def test_bin_boundary_and_mid_bin_events(self, monkeypatch):
        """Events starting exactly on a bin edge and mid-bin, plus a
        zero-length interval (never active) on the same letter."""
        events = (
            _event("edge", W + 2 * HOUR, W + 4 * HOUR, 4.0e6, ("K",)),
            _event("midbin", W + 5 * HOUR + 300, W + 6 * HOUR + 42,
                   2.5e6, ("A", "K")),
            _event("empty", W + 3 * HOUR, W + 3 * HOUR, 1.0e6, ("K",)),
        )
        _assert_equivalent(_config(events=events), monkeypatch)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_random_event_grids(self, seed, monkeypatch):
        rng = np.random.default_rng(seed)
        events = _random_events(rng, ("A", "K"), 12 * HOUR)
        _assert_equivalent(
            _config(seed=seed, events=events), monkeypatch
        )

    def test_with_nl_service(self, monkeypatch):
        """.nl recording rides the batched path via record_bins."""
        _assert_equivalent(
            _config(seed=5, include_nl=True), monkeypatch
        )

    def test_with_faults(self, monkeypatch):
        """Fault bins break segments; the faulted bins replay the
        reference arithmetic exactly."""
        plan = FaultPlan(
            specs=(
                SiteFailure(
                    letter="K", site="AMS", start=W + 3 * HOUR,
                    duration_s=HOUR, severity=1.0,
                ),
                BgpSessionReset(
                    letter="K", site="LHR", start=W + 5 * HOUR,
                    duration_s=1800,
                ),
                VpDropout(
                    start=W + 7 * HOUR, duration_s=HOUR, fraction=0.5
                ),
                PeerChurn(
                    start=W + 2 * HOUR, duration_s=HOUR, fraction=0.5
                ),
            )
        )
        _assert_equivalent(_config(seed=9, faults=plan), monkeypatch)

    def test_controllers_force_reference_path(self, monkeypatch):
        """Pluggable controllers observe per-bin state mid-loop, so
        both env settings must take the per-bin fallback and agree."""
        config = _config(
            seed=13,
            controllers={"K": GreedyShedController(calm_bins=2)},
        )
        _assert_equivalent(config, monkeypatch)
