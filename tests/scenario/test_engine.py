"""Integration tests: the full Nov/Dec 2015 scenario."""

import numpy as np
import pytest

from repro import ScenarioConfig, simulate
from repro.scenario import EVENT_DATES


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(n_vps=0)
        with pytest.raises(ValueError):
            ScenarioConfig(letters=())
        with pytest.raises(ValueError):
            ScenarioConfig(baseline_days=0)

    def test_window_validation_names_values(self):
        with pytest.raises(ValueError, match="window_seconds.*0"):
            ScenarioConfig(window_seconds=0)
        with pytest.raises(ValueError, match="bin_seconds.*-600"):
            ScenarioConfig(bin_seconds=-600)

    def test_unknown_letter_names_registry(self):
        with pytest.raises(ValueError, match="unknown letter 'ZZ'"):
            ScenarioConfig(letters=("A", "ZZ"))

    def test_letters_checked_against_custom_registry(self):
        from repro.rootdns.letters import LETTERS_SPEC

        custom = {"K": LETTERS_SPEC["K"]}
        # Valid against the override...
        ScenarioConfig(letters=("K",), custom_letters=custom)
        # ...but canonical letters missing from it are rejected.
        with pytest.raises(ValueError, match="unknown letter 'A'"):
            ScenarioConfig(letters=("A",), custom_letters=custom)

    def test_faults_field_type_checked(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            ScenarioConfig(faults=("not-a-plan",))

    def test_subset_runs(self):
        result = simulate(
            ScenarioConfig(
                seed=3, n_stubs=100, n_vps=80, letters=("B", "K"),
                include_nl=False,
            )
        )
        assert result.letters == ["B", "K"]
        assert result.nl is None

    def test_deterministic_for_seed(self):
        config = ScenarioConfig(
            seed=5, n_stubs=80, n_vps=50, letters=("K",), include_nl=False
        )
        a = simulate(config)
        b = simulate(config)
        assert (
            a.atlas.letter("K").site_idx == b.atlas.letter("K").site_idx
        ).all()

    def test_seed_changes_results(self):
        base = dict(n_stubs=80, n_vps=50, letters=("K",), include_nl=False)
        a = simulate(ScenarioConfig(seed=5, **base))
        b = simulate(ScenarioConfig(seed=6, **base))
        assert (
            a.atlas.letter("K").site_idx != b.atlas.letter("K").site_idx
        ).any()


class TestHeadlineDynamics:
    """The paper's Table 1 observations, asserted on the simulation."""

    def _worst_fraction(self, scenario, letter):
        obs = scenario.atlas.letter(letter)
        succ = (obs.site_idx >= 0).sum(axis=1).astype(float)
        return succ.min() / max(np.median(succ), 1.0)

    def test_letters_see_minimal_to_severe_loss(self, scenario):
        # Section 3.2: loss ranged from ~1 % to ~95 % across letters.
        worst = {
            letter: self._worst_fraction(scenario, letter)
            for letter in scenario.letters
            if letter != "A"
        }
        assert worst["B"] < 0.3          # unicast B suffered most
        assert worst["H"] < 0.4          # primary/backup H next
        assert worst["L"] > 0.9          # big unattacked letters fine
        assert worst["M"] > 0.9
        assert worst["B"] < worst["K"] < worst["L"]

    def test_unattacked_letters_mostly_flat(self, scenario):
        for letter in ("L", "M"):
            assert self._worst_fraction(scenario, letter) > 0.9

    def test_h_root_fails_over_and_back(self, scenario):
        log = [(e.site, e.action) for e in
               scenario.deployments["H"].policy_log]
        assert log.count(("BWI", "withdraw")) == 2   # both events
        assert log.count(("SAN", "announce")) == 2
        assert log.count(("BWI", "announce")) == 2   # recovered twice

    def test_e_root_withdrawers_stay_down_after_second_event(
        self, scenario
    ):
        e = scenario.deployments["E"]
        for code in ("AMS", "CDG", "WAW", "SYD", "NLV"):
            assert not e.prefix.is_announced(code), code
        # Absorbers remain announced.
        assert e.prefix.is_announced("FRA")

    def test_k_root_partial_withdrawals(self, scenario):
        log = [(e.site, e.action) for e in
               scenario.deployments["K"].policy_log]
        assert ("LHR", "partial") in log
        assert ("FRA", "partial") in log
        assert ("LHR", "restore") in log
        # K never fully withdraws a big site.
        assert ("LHR", "withdraw") not in log
        assert ("AMS", "withdraw") not in log

    def test_truth_arrays_shapes(self, scenario):
        truth = scenario.truth["K"]
        n_sites = len(truth.site_codes)
        assert truth.offered_qps.shape == (scenario.grid.n_bins, n_sites)
        assert truth.loss.shape == truth.offered_qps.shape
        assert (truth.loss >= 0).all() and (truth.loss <= 1).all()

    def test_attack_load_confined_to_event_bins(self, scenario):
        truth = scenario.truth["K"]
        quiet_bin = scenario.grid.bin_index(
            scenario.grid.start + 20 * 3600
        )
        event_bin = scenario.grid.bin_index(
            scenario.grid.start + int(7.5 * 3600)
        )
        assert truth.offered_qps[event_bin].sum() > (
            20 * truth.offered_qps[quiet_bin].sum()
        )

    def test_rssac_dates(self, scenario):
        reports = scenario.rssac["A"]
        assert [r.date for r in reports[-2:]] == list(EVENT_DATES)

    def test_nl_nodes_silenced(self, scenario):
        normalized = scenario.nl.normalized_series()
        mask = scenario.grid.event_mask()
        # The two co-located nodes drop to nearly nothing (Fig. 15).
        for i in range(2):
            assert normalized[mask, i].min() < 0.25
        # Stand-alone nodes keep serving.
        for i in range(2, normalized.shape[1]):
            assert normalized[mask, i].min() > 0.6

    def test_bufferbloat_rtts_at_absorbers(self, scenario):
        # Fig. 7: overloaded K sites answer with seconds of delay.
        truth = scenario.truth["K"]
        ams = truth.site_codes.index("AMS")
        mask = scenario.grid.event_mask()
        assert truth.delay_ms[mask, ams].max() > 800.0
        assert truth.delay_ms[~mask, ams].max() < 100.0
