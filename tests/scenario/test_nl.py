"""Tests for the .nl collateral-damage service model."""

import pytest

from repro.rootdns import FacilityRegistry
from repro.scenario import COLOCATED_NODES, NlConfig, NlService
from repro.util import TimeGrid


@pytest.fixture
def service():
    grid = TimeGrid.paper_window()
    facilities = FacilityRegistry(ingress_factor=0.1)
    return NlService(NlConfig(), grid, facilities), facilities


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NlConfig(base_qps=0)
        with pytest.raises(ValueError):
            NlConfig(anycast_share=0.6)


class TestService:
    def test_six_nodes(self, service):
        nl, _ = service
        assert len(nl.node_labels) == 6

    def test_colocated_nodes_registered(self, service):
        _, facilities = service
        for name, facility in COLOCATED_NODES:
            assert facilities.facility_of(name) == facility

    def test_offered_sums_to_total(self, service):
        nl, _ = service
        timestamp = nl.grid.bin_start(0)
        offered = nl.node_offered(timestamp)
        total = nl.workload.rate_at(timestamp)
        assert sum(offered.values()) == pytest.approx(total)

    def test_record_bin_applies_spill(self, service):
        nl, _ = service
        nl.record_bin(0, {"nl-anycast-1": 0.9})
        nl.record_bin(1, {})
        assert nl.served[0, 0] == pytest.approx(nl.served[1, 0] * 0.1,
                                                rel=0.05)
        assert nl.served[0, 1] > 0

    def test_normalized_series_median_is_one(self, service):
        nl, _ = service
        for b in range(nl.grid.n_bins):
            nl.record_bin(b, {})
        normalized = nl.normalized_series()
        import numpy as np

        assert np.median(normalized, axis=0) == pytest.approx(1.0)
