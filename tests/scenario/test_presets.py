"""Tests for scenario presets, including the June 2016 follow-up."""

import pytest

from repro import june2016_config, nov2015_config, simulate
from repro.core import worst_responsiveness
from repro.scenario import JUNE2016_EVENT
from repro.util import EVENT_WINDOW_START, utc


class TestPresets:
    def test_nov2015_is_default(self):
        config = nov2015_config(seed=1)
        assert config.window_start == EVENT_WINDOW_START
        assert config.events[0].qname == "www.336901.com."

    def test_june2016_window_and_event(self):
        config = june2016_config(seed=1)
        assert config.window_start == utc(2016, 6, 24)
        assert config.events == (JUNE2016_EVENT,)
        assert JUNE2016_EVENT.rate_qps == pytest.approx(10e6)
        # Broader targeting than Nov 2015 (D still spared here; L and
        # M are not targeted either).
        assert "D" not in JUNE2016_EVENT.targets

    def test_overrides_pass_through(self):
        config = june2016_config(seed=9, n_vps=123)
        assert config.seed == 9
        assert config.n_vps == 123

    def test_grid_covers_event(self):
        config = june2016_config(seed=1)
        grid = config.grid()
        bins = grid.bins_overlapping(JUNE2016_EVENT.interval)
        assert bins.size == 15  # 150 minutes of 10-minute bins


class TestJune2016Scenario:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(
            june2016_config(
                seed=3, n_stubs=200, n_vps=250,
                letters=("B", "K", "L"), include_nl=False,
            )
        )

    def test_same_choices_different_details(self, result):
        # Section 2.3: subsequent events "pose the same operational
        # choices".  Higher rate -> deeper dips for attacked letters.
        ds = result.atlas
        assert worst_responsiveness(ds, "B") < 0.2
        assert worst_responsiveness(ds, "K") < 0.9
        assert worst_responsiveness(ds, "L") > 0.9

    def test_event_mask_matches_scenario(self, result):
        mask = result.event_mask()
        assert mask.sum() == 15
        grid = result.grid
        assert mask[grid.bin_index(JUNE2016_EVENT.interval.start)]

    def test_rssac_dates_follow_window(self, result):
        dates = [r.date for r in result.rssac["K"]]
        assert dates[-2:] == ["2016-06-24", "2016-06-25"]

    def test_policies_still_fire(self, result):
        log = [(e.site, e.action) for e in
               result.deployments["K"].policy_log]
        assert ("LHR", "partial") in log
