"""Edge-case tests for engine internals and scenario plumbing."""

import numpy as np
import pytest

from repro import ScenarioConfig, quiet_config, simulate
from repro.scenario.engine import window_dates
from repro.util import TimeGrid, utc


class TestWindowDates:
    def test_canonical_window(self):
        grid = TimeGrid.paper_window()
        days, baseline = window_dates(grid)
        assert days == ["2015-11-30", "2015-12-01"]
        assert len(baseline) == 7
        assert baseline[0] == "2015-11-23"
        assert baseline[-1] == "2015-11-29"

    def test_june_window(self):
        grid = TimeGrid(start=utc(2016, 6, 24), bin_seconds=600,
                        n_bins=288)
        days, _ = window_dates(grid)
        assert days == ["2016-06-24", "2016-06-25"]


class TestEventMask:
    def test_scenario_event_mask_matches_config(self):
        result = simulate(
            ScenarioConfig(seed=2, n_stubs=80, n_vps=50,
                           letters=("K",), include_nl=False)
        )
        mask = result.event_mask()
        assert mask.sum() == 22  # 160 + 60 minutes of 10-minute bins
        assert result.event_intervals()[0].seconds == 160 * 60

    def test_quiet_scenario_has_empty_mask(self):
        result = simulate(
            quiet_config(seed=2, n_stubs=80, n_vps=50,
                         letters=("K",), include_nl=False)
        )
        assert not result.event_mask().any()
        # And no policy ever fires.
        assert not result.deployments["K"].policy_log


class TestControllerPlumbing:
    def test_bad_controller_return_type_rejected(self):
        class BrokenController:
            def decide(self, observation):
                return ["withdraw LHR"]  # not Action objects

        with pytest.raises(TypeError):
            simulate(
                ScenarioConfig(
                    seed=2, n_stubs=80, n_vps=50, letters=("K",),
                    include_nl=False,
                    controllers={"K": BrokenController()},
                )
            )

    def test_controller_only_affects_its_letter(self):
        from repro.defense import NullController

        result = simulate(
            ScenarioConfig(
                seed=2, n_stubs=120, n_vps=60, letters=("H", "K"),
                include_nl=False,
                controllers={"K": NullController()},
            )
        )
        # K is frozen by its controller; H's static policies still run.
        assert not result.deployments["K"].policy_log
        assert result.deployments["H"].policy_log

    def test_partial_and_restore_actions(self):
        from repro.defense import Action, ActionKind

        class PartialOnce:
            def __init__(self):
                self.fired = False

            def decide(self, observation):
                if not self.fired and observation.bin_index >= 42:
                    self.fired = True
                    return [
                        Action(ActionKind.PARTIAL, "LHR"),
                        Action(ActionKind.RESTORE, "FRA"),
                    ]
                return []

        result = simulate(
            ScenarioConfig(
                seed=2, n_stubs=120, n_vps=60, letters=("K",),
                include_nl=False,
                controllers={"K": PartialOnce()},
            )
        )
        assert result.deployments["K"].states["LHR"].partial


class TestTruthIntegrity:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(
            ScenarioConfig(seed=5, n_stubs=120, n_vps=60,
                           letters=("E", "K"), include_nl=False)
        )

    def test_catchment_history_shapes(self, result):
        truth = result.truth["K"]
        n_epochs = truth.stub_site_by_epoch.shape[0]
        assert truth.stub_site_by_epoch.shape[1] == len(
            result.topology.stub_asns
        )
        assert truth.epoch_of_bin.max() < n_epochs
        assert truth.epoch_of_bin.min() >= 0

    def test_stub_site_consistent_with_catchments(self, result):
        truth = result.truth["K"]
        # Every recorded site index is valid or -1.
        assert truth.stub_site_by_epoch.max() < len(truth.site_codes)
        assert truth.stub_site_by_epoch.min() >= -1

    def test_epochs_change_with_policies(self, result):
        # K's partial withdrawals create multiple routing epochs.
        truth = result.truth["K"]
        assert len(np.unique(truth.epoch_of_bin)) >= 2

    def test_legit_conservation(self, result):
        truth = result.truth["K"]
        assert (truth.legit_served_qps <= truth.legit_offered_qps
                + 1e-6).all()
        assert (truth.legit_offered_qps >= 0).all()
